// Fault model and injection bookkeeping (paper §III, §VII-B).
//
// Three fault types are modeled, extending the paper's taxonomy:
//   * Computing errors ("1+1=3"): a kernel writes one wrong element into
//     its output block. Injected immediately after the chosen operation.
//   * Storage errors (bit flips at rest): one element of a block already
//     resident in device memory is corrupted *between its last
//     verification and its next read* — the window classic Online-ABFT
//     does not protect. Injected immediately before the chosen operation
//     reads the block.
//   * Transfer errors: corruption on the PCIe path during an H2D/D2H
//     copy. The data leaves one side intact and arrives wrong, so
//     device-side verification of the source cannot see it; it lands
//     via sim::Machine's transfer hook (see machine.hpp).
//
// Faults are specified at program points (outer iteration, operation,
// block; copy ordinal for transfer faults), not at wall-clock times:
// injection is deterministic and reproducible, and the program-point
// formulation is exactly how the paper describes its experiments. A
// stochastic arrival process (process.hpp) can be attached on top; it
// samples arrival *times* and converts them into concrete injections at
// the first matching hook polled after each arrival.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/event_sink.hpp"

namespace ftla::fault {

enum class FaultType { Computing, Storage, Transfer };

/// The four operations of one outer iteration of blocked Cholesky.
enum class Op { Syrk, Gemm, Potf2, Trsm };

[[nodiscard]] const char* to_string(FaultType t);
[[nodiscard]] const char* to_string(Op op);

/// One planned fault.
struct FaultSpec {
  FaultType type = FaultType::Computing;
  /// Outer iteration (block column index) at which the fault fires.
  int iteration = 0;
  /// Computing: the op whose freshly written output is corrupted.
  /// Storage: the op that is about to *read* the corrupted block.
  Op op = Op::Gemm;
  /// Target block in block coordinates; -1 lets the driver pick the
  /// first block that matches the (iteration, op) hook.
  int block_row = -1;
  int block_col = -1;
  /// Element inside the target block.
  int elem_row = 0;
  int elem_col = 0;
  /// Computing error: the value written becomes value + magnitude.
  double magnitude = 1.0e4;
  /// Storage error: which bits of the stored double flip (0 = mantissa
  /// LSB … 63 = sign). Multi-bit flips defeat SEC-DED ECC.
  std::vector<int> bits = {52};
  /// Inject into the block's checksum row instead of the block itself
  /// (ABFT must recognize and repair corrupted checksums too).
  bool target_checksum = false;
  /// Transfer faults only: ordinal of the numeric copy to corrupt
  /// (sim::Machine counts H2D/D2H copies); -1 everywhere else. Replaying
  /// a recorded transfer fault strikes the same copy deterministically.
  std::int64_t transfer_index = -1;
};

/// What actually happened when a fault fired.
struct InjectionRecord {
  FaultSpec spec;
  double old_value = 0.0;
  double new_value = 0.0;
  int global_row = -1;  ///< element coordinates in the full matrix
  int global_col = -1;
  /// Stable injection id (index into records()); links this injection to
  /// the detection/correction telemetry events that reference it.
  std::int64_t id = -1;
  /// Virtual time at injection (0 when no clock is attached).
  double inject_time = 0.0;
  /// Virtual time the detecting verification flagged it; < 0 while the
  /// corruption is still latent. detect_time - inject_time is the
  /// detection latency Enhanced Online-ABFT exists to bound.
  double detect_time = -1.0;

  [[nodiscard]] bool detected() const noexcept { return detect_time >= 0.0; }
  [[nodiscard]] double detection_latency() const noexcept {
    return detected() ? detect_time - inject_time : -1.0;
  }
};

/// SEC-DED ECC as deployed on Tesla-class GPUs: corrects any single-bit
/// error in a protected word, detects-but-cannot-correct double-bit
/// errors, and misses wider patterns. The paper's storage faults use
/// multi-bit flips precisely because ECC already covers the 1-bit case.
struct EccModel {
  bool enabled = false;

  /// True when ECC silently repairs the flip (fault never lands).
  [[nodiscard]] bool corrects(const std::vector<int>& bits) const {
    return enabled && bits.size() <= 1;
  }
};

class FaultProcess;

/// Hands out planned faults to the driver's injection hooks and records
/// what fired so tests can assert every fault was detected/corrected.
class Injector {
 public:
  Injector() = default;
  explicit Injector(std::vector<FaultSpec> plan, EccModel ecc = {});

  /// Called by the driver at a hook point; pops and returns every
  /// not-yet-fired spec matching (type, op, iteration). Faults that ECC
  /// corrects are consumed but reported in `ecc_absorbed_count`. When a
  /// FaultProcess and a clock are attached, arrivals of `type` due at
  /// the current virtual time are synthesized into concrete specs at
  /// this program point and returned alongside the planned ones.
  std::vector<FaultSpec> take(FaultType type, Op op, int iteration);

  /// Called by sim::Machine's transfer hook for copy ordinal `seq`
  /// ending at virtual time `now`. Pops planned Transfer specs whose
  /// transfer_index matches `seq`; when `process_eligible` (the driver
  /// armed this copy for stochastic faults), due Transfer arrivals from
  /// the attached process are also converted, stamped with
  /// transfer_index = seq. Element/bit choice for process arrivals is
  /// left to the caller (it knows the copy's shape).
  std::vector<FaultSpec> take_transfer(std::int64_t seq, double now,
                                       bool process_eligible);

  /// Called by the drivers inside checkpoint/rollback windows, where no
  /// kernel hook runs but resident data is still exposed. Converts due
  /// *storage* arrivals from the attached process into strikes at
  /// (op, iteration); planned specs are never matched here (they fire
  /// at their declared kernel hooks only, preserving replay semantics).
  std::vector<FaultSpec> poll_window(Op op, int iteration);

  /// Attaches a stochastic arrival process (not owned; nullptr
  /// detaches). Requires a clock for arrivals to be converted.
  void attach_process(FaultProcess* process) { process_ = process; }

  /// Driver reports the concrete effect of a fired fault. Returns the
  /// injection id; emits a FaultInjected telemetry event when an event
  /// sink is attached.
  std::int64_t record(const FaultSpec& spec, double old_value,
                      double new_value, int global_row, int global_col);

  /// Driver reports that the verification running at virtual time `time`
  /// caught injection `id`. First report wins; later calls are no-ops.
  void mark_detected(std::int64_t id, double time);

  /// Observability wiring (both optional, not owned). The clock supplies
  /// virtual time for injection stamps — drivers attach the machine's
  /// host clock.
  void set_event_sink(obs::EventSink* sink) { sink_ = sink; }
  void set_clock(std::function<double()> clock) {
    clock_ = std::move(clock);
  }

  [[nodiscard]] const std::vector<InjectionRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] int detected_count() const noexcept {
    int n = 0;
    for (const auto& r : records_) n += r.detected() ? 1 : 0;
    return n;
  }
  [[nodiscard]] int fired_count() const noexcept {
    return static_cast<int>(records_.size());
  }
  [[nodiscard]] int ecc_absorbed_count() const noexcept {
    return ecc_absorbed_;
  }
  [[nodiscard]] int pending_count() const noexcept {
    return static_cast<int>(plan_.size());
  }
  [[nodiscard]] const EccModel& ecc() const noexcept { return ecc_; }

 private:
  std::vector<FaultSpec> plan_;
  std::vector<InjectionRecord> records_;
  EccModel ecc_;
  int ecc_absorbed_ = 0;
  obs::EventSink* sink_ = nullptr;
  std::function<double()> clock_;
  FaultProcess* process_ = nullptr;
};

/// Builders for the paper's two experiment scenarios on an
/// (nblocks x nblocks)-block matrix.
/// One computing error in the GEMM output of iteration `iter`.
FaultSpec computing_error_at(int iter, int nblocks, Rng& rng);
/// One multi-bit storage error in a decomposed panel block that SYRK or
/// GEMM of iteration `iter` is about to read.
FaultSpec storage_error_at(int iter, int nblocks, Rng& rng);

/// A randomized plan of exactly `count` faults spread over the
/// factorization, at most one per (iteration, op, type, block) hook.
/// Sampling resumes after deduplication until `count` distinct hooks are
/// hit, so campaign fault budgets are honest; if the hook grid is too
/// small to host `count` distinct faults the plan saturates and the
/// (smaller) actual size is the returned vector's size.
std::vector<FaultSpec> random_plan(int count, int nblocks,
                                   std::uint64_t seed,
                                   std::optional<FaultType> only_type = {});

// ----- device-level faults (fleet model, docs/fleet.md) --------------

/// Machine-level failure modes, orthogonal to the element-level
/// taxonomy above: they strike a whole device, not a block.
enum class DeviceFaultKind {
  /// The device vanishes at a virtual instant; every subsequent
  /// operation issued to it throws sim::DeviceLostError.
  FailStop,
  /// Transient hang: operations issued inside [time, time + duration)
  /// are held until the window closes, then proceed normally.
  Stall,
  /// The device keeps computing but its soft-error arrival rate is
  /// multiplied by rate_multiplier (per-device stream in FaultProcess).
  Degrade,
};
[[nodiscard]] const char* to_string(DeviceFaultKind k);

/// One planned device-level fault, addressed by virtual time — unlike
/// FaultSpec's program points, a device does not fail at an iteration
/// of someone's loop; it fails at an instant.
struct DeviceFaultSpec {
  DeviceFaultKind kind = DeviceFaultKind::FailStop;
  int device = 0;
  double time = 0.0;
  /// Stall only: width of the hang window in virtual seconds.
  double duration = 0.0;
  /// Degrade only: soft-error rate multiplier (> 1).
  double rate_multiplier = 8.0;
};

/// Shape of a randomized device-fault plan for one fleet scenario.
struct DeviceFaultPlanConfig {
  int devices = 2;
  int loss_count = 1;
  int stall_count = 0;
  int degrade_count = 0;
  /// Fault-free fleet makespan of the workload; fail-stop and stall
  /// instants land in [0.15, 0.85] of it so losses strike mid-run.
  double horizon_s = 1.0;
  /// Stall width as a fraction of the horizon.
  double stall_duration_frac = 0.05;
  double degrade_multiplier = 8.0;
  std::uint64_t seed = 1;
};

/// Deterministically samples a device-fault plan: distinct devices for
/// losses (capped at devices - 1 so the fleet is never annihilated by
/// plan), times sorted ascending with device id as tie-break.
std::vector<DeviceFaultSpec> sample_device_faults(
    const DeviceFaultPlanConfig& cfg);

}  // namespace ftla::fault
