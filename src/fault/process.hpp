// Rate-based stochastic fault process (campaign engine substrate).
//
// The planned Injector fires faults at fixed program points; real
// machines fail at random *times*. FaultProcess models that: arrivals
// follow a Poisson process with mean inter-arrival time `mtbf_s` in
// virtual seconds, each arrival is typed (computing / storage /
// transfer) at sample time, and an arrival is consumed at the first
// matching injection hook polled after its arrival time. The machine's
// virtual clock drives the process, so runs are deterministic for a
// given seed — faster simulated executions see fewer faults, exactly
// like real MTBF scaling.
//
// Synthesis policy (what a consumed arrival becomes):
//   * Computing arrivals corrupt the polled op's freshly written output
//     (random element, magnitude 1e3..1e5 relative).
//   * Storage arrivals strike a resident block of the live region —
//     block row at or below the current panel, block column at or
//     before it — occasionally the block's checksum rows
//     (p_checksum_target) or a correlated pair of flips in one block
//     column (p_double_fault, defeats single-error correction). Bit
//     patterns always include a high-mantissa/exponent bit so the
//     corruption is macroscopic, and are drawn from bits 8..61 so a
//     flip can never manufacture an Inf/NaN from a finite value.
//   * Transfer arrivals are handed to sim::Machine's transfer hook,
//     which knows the in-flight copy's shape (see fault.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"

namespace ftla::fault {

struct ProcessConfig {
  /// Mean time between faults, in virtual seconds. Must be > 0.
  double mtbf_s = 1.0e-3;
  std::uint64_t seed = 1;
  /// Relative category weights (normalized internally).
  double w_computing = 0.35;
  double w_storage = 0.45;
  double w_transfer = 0.20;
  /// Probability a storage arrival strikes a checksum row instead of
  /// matrix data.
  double p_checksum_target = 0.15;
  /// Probability a storage arrival lands a correlated double fault:
  /// two elements of the same column of one block, which defeats
  /// single-error-per-column correction and must escalate.
  double p_double_fault = 0.10;
  /// Probability a storage flip is single-bit (absorbed when the run
  /// models ECC; lands otherwise).
  double p_single_bit = 0.10;
  /// Hard cap on arrivals *per device* — bounds fault storms so the
  /// rerun escalation ladder terminates. The cap is deliberately not
  /// fleet-global: one noisy device exhausting a shared budget would
  /// starve injection on its healthy siblings and silently weaken
  /// fleet campaigns.
  int max_arrivals = 64;
  /// When true, synthesized storage specs carry explicit block targets
  /// using blocked-Cholesky lower-triangle geometry. When false they
  /// leave block_row/block_col at -1 and the polling driver's own
  /// default-target logic picks the block (LU/QR geometry).
  bool explicit_blocks = true;
  /// Devices this process covers. Each device gets an independent
  /// arrival stream (own rng, own clock, own storm cap); device 0's
  /// stream is seeded with `seed` exactly like the single-device
  /// process, so single-node runs are unchanged.
  int devices = 1;
};

/// Poisson arrival generator + arrival-to-FaultSpec synthesizer.
/// Deterministic for a given (config.seed, sequence of drain times).
/// With config.devices > 1 the process keeps one independent arrival
/// stream per device; drains apply to the *active* device (the one the
/// caller is currently driving), selected with set_active_device().
class FaultProcess {
 public:
  FaultProcess(ProcessConfig cfg, int nblocks);

  /// Consumes and counts the active device's arrivals of `type` due at
  /// or before virtual time `now`. Arrivals of other types stay pending
  /// for their own hooks. Monotonically increasing `now` is expected
  /// but not required; a stale `now` simply drains nothing new.
  int drain(FaultType type, double now);

  /// Turns one consumed arrival into concrete fault spec(s) at the
  /// given program point (two specs for a correlated double fault).
  std::vector<FaultSpec> synthesize(FaultType type, Op op, int iteration);

  /// Picks the multi-bit (or, with p_single_bit, single-bit) flip
  /// pattern used for storage and transfer corruption.
  std::vector<int> sample_bits();

  /// Routes subsequent drains to `device`'s arrival stream.
  void set_active_device(int device);
  [[nodiscard]] int active_device() const noexcept { return active_; }

  /// Scales `device`'s soft-error arrival rate (degraded hardware:
  /// multiplier > 1 means faults arrive that much faster). Applies to
  /// arrivals not yet generated; deterministic when set before the
  /// device's first drain.
  void set_rate_multiplier(int device, double multiplier);

  /// Arrivals generated across all devices.
  [[nodiscard]] int arrivals_generated() const noexcept;
  /// Arrivals generated on one device's stream.
  [[nodiscard]] int arrivals_generated(int device) const;
  [[nodiscard]] const ProcessConfig& config() const noexcept { return cfg_; }

 private:
  struct DeviceStream {
    explicit DeviceStream(std::uint64_t seed) : rng(seed) {}
    Rng rng;  // arrival times + categories
    double next_time = 0.0;
    double rate_multiplier = 1.0;
    int generated = 0;
    // Pending (arrived, not yet consumed) counts per category.
    int pending[3] = {0, 0, 0};
  };

  void generate_until(DeviceStream& ds, double now);
  [[nodiscard]] DeviceStream& active_stream();

  ProcessConfig cfg_;
  int nblocks_;
  std::vector<DeviceStream> dev_;
  int active_ = 0;
  Rng synth_rng_;  // targets, elements, bits (shared; drains are ordered)
};

}  // namespace ftla::fault
