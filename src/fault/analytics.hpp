// Cross-scenario campaign analytics: the distributions a single
// CampaignSummary only holds implicitly.
//
// The campaign engine classifies each scenario in isolation; resilience
// papers (Bosilca et al., and the online-GEMM ABFT line) judge a scheme
// by *distributions* — how fast faults are detected, how outcomes split
// per configuration, how much the protection costs. aggregate_campaign
// turns the per-scenario observations retained by
// CampaignOptions::collect_observations into exactly those:
//
//   * detection-latency histograms per fault type (computing / storage /
//     transfer), in virtual seconds, on the default log-spaced edges so
//     they merge with the drivers' abft.detection_latency_s metric;
//   * verdict breakdowns keyed "algo/variant/recovery" — one level
//     finer than CampaignSummary::verdicts, enough to compare recovery
//     policies;
//   * ABFT overhead percentiles keyed "algo/variant": each scenario's
//     virtual makespan divided by a memoized fault-free NoFt baseline
//     of the same (algo, n, block) — the online-ABFT overhead ratio,
//     reported as exact nearest-rank percentiles over the raw ratios.
//
// Export is byte-stable schema-v1 JSON (analytics_version 1) with the
// same conventions as every obs serializer: sorted keys, fmt_double.
// Everything derives from virtual time, so a campaign aggregates
// identically on any machine and thread count.
#pragma once

#include <array>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fault/campaign.hpp"

namespace ftla::fault {

/// A serialized-friendly histogram snapshot: summary scalars plus the
/// (upper_edge, hits) bucket rows, overflow bucket last with an
/// infinite upper edge. Round-trips exactly through the JSON export
/// (the obs MetricsReport uses the same row shape).
struct HistogramSummary {
  long long count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<std::pair<double, long long>> buckets;
};

struct CampaignAnalytics {
  static constexpr int kAnalyticsVersion = 1;

  /// Free-form campaign description (seed, scenario count...), sorted
  /// on export.
  std::map<std::string, std::string> meta;

  /// Scenarios aggregated (== observations consumed).
  int scenarios = 0;

  /// Verdict histogram keyed "algo/variant/recovery", indexed by
  /// Verdict (same row layout as CampaignSummary::verdicts).
  std::map<std::string, std::array<long long, kVerdictCount>> verdicts;

  /// Detection latency per fault type name ("computing", "storage",
  /// "transfer"), virtual seconds, default log-spaced edges.
  std::map<std::string, HistogramSummary> detection_latency;

  /// Exact nearest-rank summary over raw overhead ratios
  /// (scenario makespan / fault-free NoFt baseline of the same shape).
  struct OverheadStats {
    long long samples = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  /// Keyed "algo/variant".
  std::map<std::string, OverheadStats> overhead;
};

/// Aggregates a summary's observations (requires a campaign run with
/// CampaignOptions::collect_observations). Baseline runs are memoized
/// per (algo, n, block), so the cost is a handful of small fault-free
/// factorizations.
CampaignAnalytics aggregate_campaign(const CampaignSummary& summary);

/// Byte-stable analytics_version-1 JSON (sorted keys, 17-digit doubles).
void write_analytics_json(const CampaignAnalytics& analytics,
                          std::ostream& os);
bool write_analytics_json_file(const CampaignAnalytics& analytics,
                               const std::string& path);

/// Parses a document written by write_analytics_json. Returns false on
/// malformed input or a schema-version mismatch.
bool read_analytics_json(std::istream& is, CampaignAnalytics* out);
bool read_analytics_json_file(const std::string& path,
                              CampaignAnalytics* out);

}  // namespace ftla::fault
