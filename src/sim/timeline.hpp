// Capacity timeline: the discrete-event allocator behind the simulated
// GPU's SM pool.
//
// A ResourceTimeline models a resource with integer capacity C. Each
// allocation requests `units <= C` for a duration and an earliest start;
// the allocator returns the earliest start time at which the request fits
// without ever exceeding capacity (space-sharing, no preemption, no
// slowdown under contention — contention delays starts instead, which is
// how SMs behave for co-resident kernels).
#pragma once

#include <map>

#include "common/error.hpp"

namespace ftla::sim {

class ResourceTimeline {
 public:
  explicit ResourceTimeline(int capacity) : capacity_(capacity) {
    FTLA_CHECK(capacity > 0);
  }

  [[nodiscard]] int capacity() const noexcept { return capacity_; }

  /// Reserves `units` for [start, start + duration) where start is the
  /// earliest feasible time >= earliest. Returns start.
  double allocate(double earliest, double duration, int units);

  /// Usage at time t (counting an allocation as active on [start, end)).
  [[nodiscard]] int usage_at(double t) const;

  /// Total allocated unit-seconds so far (for utilization reports).
  [[nodiscard]] double busy_unit_seconds() const noexcept {
    return busy_unit_seconds_;
  }

  /// Latest end time of any allocation made so far.
  [[nodiscard]] double last_end() const noexcept { return last_end_; }

  /// Drops breakpoints at or before `t` (all future allocations must
  /// have earliest >= t). Keeps the timeline small over long runs.
  void prune(double t);

 private:
  int capacity_;
  int base_usage_ = 0;           // usage carried by pruned breakpoints
  std::map<double, int> delta_;  // time -> usage change at that time
  double busy_unit_seconds_ = 0.0;
  double last_end_ = 0.0;
  double prune_horizon_ = 0.0;
};

}  // namespace ftla::sim
