// The heterogeneous-node simulator: a CUDA-like runtime with a virtual
// clock.
//
// Semantics mirror the CUDA features the paper's implementation relies
// on: device memory distinct from host memory, per-stream FIFO ordering,
// events, async H2D/D2H copies on dedicated copy engines, and concurrent
// kernel execution bounded by device resources (paper Opt 1).
//
// Execution model — "real math, virtual time":
//   * In ExecutionMode::Numeric every operation's `body` closure runs
//     eagerly at issue time, so numerics (and injected faults) are real.
//   * Timing is simulated: each operation is placed on a discrete-event
//     timeline using the machine profile's cost model, and benches report
//     virtual seconds. Nothing reads the wall clock.
//   * In ExecutionMode::TimingOnly bodies are skipped and device buffers
//     hold no storage, so paper-scale problem sizes (30720^2 doubles)
//     can be swept cheaply. Callers must only touch data inside bodies.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "obs/event_sink.hpp"
#include "obs/span.hpp"
#include "sim/profile.hpp"
#include "sim/timeline.hpp"

namespace ftla::sim {

enum class ExecutionMode { Numeric, TimingOnly };

/// Thrown by every Machine entry point once the device's virtual clock
/// has reached its armed fail-stop instant (set_fail_at): the device is
/// gone, and no further work can be issued to it. Deliberately NOT an
/// ftla::Error — the ABFT drivers' recovery ladders catch Error to
/// rerun or roll back *on the same device*, which a lost device cannot
/// execute; this exception must unwind out of the driver to the fleet
/// layer, which owns migration (docs/fleet.md).
class DeviceLostError : public std::runtime_error {
 public:
  DeviceLostError(int device, double at);
  [[nodiscard]] int device() const noexcept { return device_; }
  /// The virtual instant the device failed.
  [[nodiscard]] double at() const noexcept { return at_; }

 private:
  int device_;
  double at_;
};

/// Static description of one unit of simulated work.
struct KernelDesc {
  std::string name;
  KernelClass cls = KernelClass::Other;
  std::int64_t flops = 0;
  /// SM units requested; 0 means the profile default for `cls`.
  int sm_units = 0;
};

using StreamId = int;
using EventId = int;

struct TraceRecord {
  std::string name;
  KernelClass cls = KernelClass::Other;
  int lane = 0;  ///< stream id, or kHostLane / kH2dLane / kD2hLane
  double start = 0.0;
  double end = 0.0;
  int units = 0;
  std::int64_t flops = 0;  ///< modeled cost (0 for transfers)
};

inline constexpr int kHostLane = -1;
inline constexpr int kH2dLane = -2;
inline constexpr int kD2hLane = -3;

/// In-flight copy descriptor handed to the transfer-corruption hook
/// (fault-campaign support). The hook runs after the numeric copy and
/// the timing model, so it may mutate the destination region — that is
/// "corruption on the PCIe path": the source stays intact, the data
/// arrives wrong, and no device-side verification of the source can
/// have seen it.
struct TransferCtx {
  const char* name = "";  ///< "h2d", "d2h", "h2d_2d", "d2h_2d"
  bool h2d = true;        ///< direction (false = d2h)
  double* data = nullptr;  ///< destination region, column-major
  int rows = 0;
  int cols = 0;  ///< 1 for flat copies
  int ld = 0;
  /// Destination offset into the device buffer when the destination is
  /// device memory (lets callers map to global coordinates); -1 when
  /// the destination is host memory.
  std::int64_t dev_off = -1;
  std::int64_t seq = 0;  ///< ordinal among this machine's numeric copies
  double start = 0.0;    ///< modeled transfer window
  double end = 0.0;
  StreamId stream = 0;
  bool armed = false;  ///< driver armed this direction for stochastic faults
};

using TransferHook = std::function<void(const TransferCtx&)>;

struct ClassStats {
  long long count = 0;
  std::int64_t flops = 0;
  double busy_seconds = 0.0;
};

struct SimStats {
  std::map<KernelClass, ClassStats> gpu;
  std::map<KernelClass, ClassStats> host;
  long long h2d_count = 0;
  long long d2h_count = 0;
  std::int64_t h2d_bytes = 0;
  std::int64_t d2h_bytes = 0;
  double h2d_seconds = 0.0;
  double d2h_seconds = 0.0;
  double host_busy_seconds = 0.0;

  [[nodiscard]] std::int64_t total_gpu_flops() const;
  [[nodiscard]] double total_transfer_seconds() const {
    return h2d_seconds + d2h_seconds;
  }
};

class Machine;

/// A device-memory allocation of doubles. RAII: releases its accounting
/// (and storage in Numeric mode) on destruction. Movable, not copyable.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { move_from(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  ~DeviceBuffer() { release(); }

  [[nodiscard]] std::int64_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t bytes() const noexcept {
    return count_ * static_cast<std::int64_t>(sizeof(double));
  }
  [[nodiscard]] bool allocated() const noexcept { return machine_ != nullptr; }

  /// Raw device pointer — only valid in Numeric mode, and by convention
  /// only touched from inside operation bodies.
  [[nodiscard]] double* data();
  [[nodiscard]] const double* data() const;

  /// Column-major view of [off, off + rows*cols) with leading dim `ld`.
  [[nodiscard]] MatrixView<double> view(std::int64_t off, int rows, int cols,
                                        int ld);
  [[nodiscard]] ConstMatrixView<double> view(std::int64_t off, int rows,
                                             int cols, int ld) const;

 private:
  friend class Machine;
  void move_from(DeviceBuffer& other) noexcept;
  void release() noexcept;

  Machine* machine_ = nullptr;
  std::vector<double> storage_;
  std::int64_t count_ = 0;
};

/// One simulated CPU+GPU node.
class Machine {
 public:
  Machine(MachineProfile profile, ExecutionMode mode);

  [[nodiscard]] const MachineProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] ExecutionMode mode() const noexcept { return mode_; }
  /// True when numeric payloads execute (bodies run, buffers are real).
  [[nodiscard]] bool numeric() const noexcept {
    return mode_ == ExecutionMode::Numeric;
  }

  // ----- device memory ---------------------------------------------
  /// Allocates `count` doubles of device memory (zero-initialized, as
  /// the drivers rely on deterministic contents).
  DeviceBuffer alloc(std::int64_t count);
  [[nodiscard]] std::int64_t device_bytes_in_use() const noexcept {
    return device_bytes_in_use_;
  }

  // ----- streams and events ----------------------------------------
  [[nodiscard]] StreamId default_stream() const noexcept { return 0; }
  StreamId create_stream();
  [[nodiscard]] int stream_count() const noexcept {
    return static_cast<int>(streams_.size());
  }
  /// Virtual time at which everything so far issued on `s` completes.
  /// Free to read (no host-call overhead): the runtime's stream
  /// executor uses it to pick the least-loaded stream for a task.
  [[nodiscard]] double stream_end(StreamId s) const {
    return streams_.at(static_cast<std::size_t>(s)).last_end;
  }
  EventId record_event(StreamId s);
  void stream_wait_event(StreamId s, EventId e);
  void sync_stream(StreamId s);
  void sync_event(EventId e);
  /// cudaDeviceSynchronize(): joins the host with all device work.
  void sync_all();

  // ----- work -------------------------------------------------------
  /// Launches a kernel asynchronously on stream `s`. `body` performs the
  /// numeric payload (run eagerly in Numeric mode, skipped otherwise).
  void launch(StreamId s, const KernelDesc& d,
              const std::function<void()>& body);

  /// Runs work on the host CPU, advancing the host clock by the modeled
  /// duration. Host work implicitly serializes with other host work.
  void host_compute(const KernelDesc& d, const std::function<void()>& body);

  /// Advances the host clock without doing work (driver-logic cost).
  void host_advance(double seconds);

  /// Async copy host -> device on the H2D engine, ordered within `s`.
  void memcpy_h2d(DeviceBuffer& dst, std::int64_t dst_off, const double* src,
                  std::int64_t n, StreamId s, bool blocking = false);
  /// Async copy device -> host on the D2H engine, ordered within `s`.
  void memcpy_d2h(double* dst, const DeviceBuffer& src, std::int64_t src_off,
                  std::int64_t n, StreamId s, bool blocking = false);
  /// Strided 2-D copies (cudaMemcpy2D equivalents) for moving blocks and
  /// panels that are sub-views of larger column-major matrices.
  void memcpy_h2d_2d(DeviceBuffer& dst, std::int64_t dst_off, int dst_ld,
                     const double* src, int src_ld, int rows, int cols,
                     StreamId s, bool blocking = false);
  void memcpy_d2h_2d(double* dst, int dst_ld, const DeviceBuffer& src,
                     std::int64_t src_off, int src_ld, int rows, int cols,
                     StreamId s, bool blocking = false);

  /// Device-to-device copy (modeled as a 1-SM copy kernel).
  void memcpy_d2d(DeviceBuffer& dst, std::int64_t dst_off,
                  const DeviceBuffer& src, std::int64_t src_off,
                  std::int64_t n, StreamId s);

  // ----- clocks and reporting ---------------------------------------
  [[nodiscard]] double host_now() const noexcept { return host_time_; }
  /// Completion time of everything issued so far (host + GPU + copies).
  [[nodiscard]] double makespan() const noexcept;
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double gpu_busy_sm_seconds() const noexcept {
    return gpu_pool_.busy_unit_seconds();
  }
  /// Mean GPU SM-pool utilization over [0, makespan()].
  [[nodiscard]] double gpu_utilization() const;

  void set_trace_enabled(bool enabled) { trace_enabled_ = enabled; }
  [[nodiscard]] const std::vector<TraceRecord>& trace() const noexcept {
    return trace_;
  }

  /// Default cap on retained trace records. Long TimingOnly sweeps issue
  /// millions of operations; an unbounded trace_ dominated memory, so
  /// recording stops at the cap and further records are only counted.
  static constexpr std::size_t kDefaultTraceLimit = 1u << 20;
  /// Adjusts the record cap (takes effect for subsequent records; it
  /// does not shrink an already-collected trace).
  void set_trace_limit(std::size_t limit) { trace_limit_ = limit; }
  [[nodiscard]] std::size_t trace_limit() const noexcept {
    return trace_limit_;
  }
  /// Records discarded because the trace was at its cap.
  [[nodiscard]] std::size_t trace_dropped() const noexcept {
    return trace_dropped_;
  }

  /// Attaches a structured-event sink (not owned; nullptr detaches).
  /// Every kernel, host task, copy and sync is then posted as an
  /// obs::Event with stream / SM-unit attribution, independent of the
  /// TraceRecord path.
  void set_event_sink(obs::EventSink* sink) { sink_ = sink; }
  [[nodiscard]] obs::EventSink* event_sink() const noexcept { return sink_; }

  /// Attaches a profiler span store (not owned; nullptr detaches).
  /// Every kernel, host task and copy is then recorded as an obs::Span
  /// with its virtual window, lane, kernel class and modeled cost; the
  /// attached store stamps ABFT phase and iteration (sim/profiler.hpp).
  void set_span_store(obs::SpanStore* spans) { spans_ = spans; }
  [[nodiscard]] obs::SpanStore* span_store() const noexcept { return spans_; }

  // ----- transfer-fault hook ----------------------------------------
  /// Attaches the transfer-corruption hook (fault campaigns). Called in
  /// Numeric mode after every non-empty H2D/D2H copy with a TransferCtx
  /// describing the landed data; the hook may corrupt it in place.
  /// Copies are numbered (`TransferCtx::seq`) whether or not a hook is
  /// attached, so replays strike the same copy ordinal.
  void set_transfer_hook(TransferHook hook) {
    transfer_hook_ = std::move(hook);
  }
  /// Per-direction arming, toggled by the drivers to scope *stochastic*
  /// transfer faults to copies the fault model covers (e.g. everything
  /// between checksum encode and the final download). The hook itself
  /// still runs on unarmed copies — planned faults replay anywhere —
  /// with TransferCtx::armed = false.
  void set_transfer_faults_armed(bool h2d, bool d2h) {
    h2d_armed_ = h2d;
    d2h_armed_ = d2h;
  }
  [[nodiscard]] bool h2d_faults_armed() const noexcept { return h2d_armed_; }
  [[nodiscard]] bool d2h_faults_armed() const noexcept { return d2h_armed_; }
  /// Ordinal the next numeric copy will get.
  [[nodiscard]] std::int64_t transfer_seq() const noexcept {
    return transfer_seq_;
  }

  // ----- fleet integration (device faults + shared interconnect) -----
  /// Labels this machine inside a fleet (error messages, telemetry).
  void set_device_id(int id) noexcept { device_id_ = id; }
  [[nodiscard]] int device_id() const noexcept { return device_id_; }

  /// Arms a fail-stop device loss: the first operation issued at or
  /// after virtual instant `t` throws DeviceLostError. Work issued
  /// strictly before `t` completes — in-flight kernels are not clawed
  /// back, matching a host-observed device loss.
  void set_fail_at(double t) noexcept { fail_at_ = t; }
  [[nodiscard]] double fail_at() const noexcept { return fail_at_; }
  /// True once the virtual clock has reached the armed loss instant.
  [[nodiscard]] bool lost() const noexcept { return host_time_ >= fail_at_; }

  /// Adds a transient stall window [from, to): any operation issued
  /// inside the window is held until `to` (a driver/runtime hang, not a
  /// loss — no exception, only time).
  void add_stall(double from, double to);

  /// Attaches the fleet's shared host-interconnect timeline (not owned;
  /// nullptr detaches). When set, every H2D/D2H copy reserves one unit
  /// on it, so transfers of fleet siblings contend for the shared link
  /// in addition to this device's own copy engines.
  void set_host_link(ResourceTimeline* link) noexcept { host_link_ = link; }
  [[nodiscard]] ResourceTimeline* host_link() const noexcept {
    return host_link_;
  }

 private:
  friend class DeviceBuffer;

  struct StreamState {
    double last_end = 0.0;
  };

  double kernel_duration(const KernelDesc& d, int units) const;
  int resolve_units(const KernelDesc& d) const;
  /// Device-fault gate, run at the entry of every clock-advancing
  /// operation: applies pending stall windows to the host clock, then
  /// throws DeviceLostError if the clock has reached the armed loss.
  void tick();
  /// Reserves the transfer window [earliest, +dur) on this device's
  /// copy engine and, when attached, on the fleet's shared host link;
  /// returns the contention-resolved start time.
  double reserve_link(double earliest, double dur);
  void note_transfer(const char* name, bool h2d, double* data, int rows,
                     int cols, int ld, std::int64_t dev_off, double start,
                     double end, StreamId s);
  void note_trace(std::string name, KernelClass cls, int lane, double start,
                  double end, int units, std::int64_t flops = 0);
  void note_span(obs::EventKind kind, const std::string& name,
                 KernelClass cls, int lane, double start, double end,
                 std::int64_t flops, std::int64_t bytes, int units);
  void note_sync(const char* name);

  MachineProfile profile_;
  ExecutionMode mode_;
  double host_time_ = 0.0;
  ResourceTimeline gpu_pool_;
  double h2d_free_ = 0.0;
  double d2h_free_ = 0.0;
  std::vector<StreamState> streams_;
  std::vector<double> events_;
  std::int64_t device_bytes_in_use_ = 0;
  SimStats stats_;
  bool trace_enabled_ = false;
  std::vector<TraceRecord> trace_;
  std::size_t trace_limit_ = kDefaultTraceLimit;
  std::size_t trace_dropped_ = 0;
  obs::EventSink* sink_ = nullptr;
  obs::SpanStore* spans_ = nullptr;
  TransferHook transfer_hook_;
  bool h2d_armed_ = false;
  bool d2h_armed_ = false;
  std::int64_t transfer_seq_ = 0;
  int device_id_ = 0;
  double fail_at_ = std::numeric_limits<double>::infinity();
  std::vector<std::pair<double, double>> stalls_;  ///< sorted by start
  ResourceTimeline* host_link_ = nullptr;
};

/// Scoped (re)arming of transfer faults: restores the previous arming on
/// destruction, so drivers stay exception-safe when a verification
/// throws mid-factorization.
class TransferArmGuard {
 public:
  TransferArmGuard(Machine& m, bool h2d, bool d2h)
      : m_(m),
        prev_h2d_(m.h2d_faults_armed()),
        prev_d2h_(m.d2h_faults_armed()) {
    m_.set_transfer_faults_armed(h2d, d2h);
  }
  TransferArmGuard(const TransferArmGuard&) = delete;
  TransferArmGuard& operator=(const TransferArmGuard&) = delete;
  ~TransferArmGuard() { m_.set_transfer_faults_armed(prev_h2d_, prev_d2h_); }

 private:
  Machine& m_;
  bool prev_h2d_;
  bool prev_d2h_;
};

}  // namespace ftla::sim
