#include "sim/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <vector>

namespace ftla::sim {

namespace {

std::string lane_name(int lane) {
  switch (lane) {
    case kHostLane: return "host CPU";
    case kH2dLane: return "H2D engine";
    case kD2hLane: return "D2H engine";
    default: return "stream " + std::to_string(lane);
  }
}

// Chrome tracing sorts lanes by tid; map our lanes to stable ids.
int lane_tid(int lane) {
  switch (lane) {
    case kHostLane: return 0;
    case kH2dLane: return 1;
    case kD2hLane: return 2;
    default: return 10 + lane;
  }
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void write_chrome_trace(const Machine& machine, std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  // Lane naming metadata.
  std::map<int, bool> lanes;
  for (const auto& r : machine.trace()) lanes[r.lane] = true;
  for (const auto& [lane, _] : lanes) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << lane_tid(lane) << ",\"args\":{\"name\":\"";
    json_escape(os, lane_name(lane));
    os << "\"}}";
  }
  // Complete events; virtual seconds -> microseconds.
  for (const auto& r : machine.trace()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    json_escape(os, r.name);
    os << "\",\"cat\":\"" << to_string(r.cls)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << lane_tid(r.lane)
       << ",\"ts\":" << r.start * 1e6 << ",\"dur\":" << (r.end - r.start) * 1e6
       << ",\"args\":{\"sm_units\":" << r.units << "}}";
  }
  os << "]}";
}

bool write_chrome_trace_file(const Machine& machine,
                             const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(machine, f);
  return static_cast<bool>(f);
}

void print_trace_summary(const Machine& machine, std::ostream& os,
                         int strip_width) {
  const auto& trace = machine.trace();
  const double span = machine.makespan();
  struct LaneStat {
    long long count = 0;
    double busy = 0.0;
    std::vector<char> strip;
  };
  std::map<int, LaneStat> lanes;
  for (const auto& r : trace) {
    auto& ls = lanes[r.lane];
    ++ls.count;
    ls.busy += r.end - r.start;
    if (ls.strip.empty()) ls.strip.assign(strip_width, '.');
    if (span > 0.0) {
      int from = static_cast<int>(r.start / span * strip_width);
      int to = static_cast<int>(r.end / span * strip_width);
      from = std::clamp(from, 0, strip_width - 1);
      to = std::clamp(to, from, strip_width - 1);
      for (int i = from; i <= to; ++i) ls.strip[i] = '#';
    }
  }
  os << "trace summary — makespan " << span << " s, " << trace.size()
     << " ops\n";
  for (const auto& [lane, ls] : lanes) {
    const double util = span > 0.0 ? ls.busy / span : 0.0;
    os << "  " << lane_name(lane) << ": " << ls.count << " ops, busy "
       << ls.busy << " s (" << static_cast<int>(util * 100.0) << "%)\n    ["
       << std::string(ls.strip.begin(), ls.strip.end()) << "]\n";
  }
}

}  // namespace ftla::sim
