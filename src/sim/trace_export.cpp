#include "sim/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <vector>

namespace ftla::sim {

namespace {

std::string lane_name(int lane) {
  switch (lane) {
    case kHostLane: return "host CPU";
    case kH2dLane: return "H2D engine";
    case kD2hLane: return "D2H engine";
    default: return "stream " + std::to_string(lane);
  }
}

// Chrome tracing sorts lanes by tid; map our lanes to stable ids.
int lane_tid(int lane) {
  switch (lane) {
    case kHostLane: return 0;
    case kH2dLane: return 1;
    case kD2hLane: return 2;
    default: return 10 + lane;
  }
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

/// True for obs kinds whose spans duplicate the machine's own trace
/// records — the merger skips them.
bool is_machine_span(obs::EventKind k) {
  return k == obs::EventKind::Kernel || k == obs::EventKind::HostTask ||
         k == obs::EventKind::Copy || k == obs::EventKind::Sync;
}

void write_event_args(std::ostream& os, const obs::Event& e) {
  os << "{";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  if (!e.op.empty()) {
    sep();
    os << "\"op\":\"";
    json_escape(os, e.op);
    os << "\"";
  }
  if (e.iteration >= 0) {
    sep();
    os << "\"iter\":" << e.iteration;
  }
  if (e.block_row >= 0 || e.block_col >= 0) {
    sep();
    os << "\"block_row\":" << e.block_row << ",\"block_col\":" << e.block_col;
  }
  if (e.row >= 0 || e.col >= 0) {
    sep();
    os << "\"row\":" << e.row << ",\"col\":" << e.col;
  }
  if (e.kind == obs::EventKind::Verification ||
      e.kind == obs::EventKind::Detection) {
    sep();
    os << "\"pass\":" << (e.pass ? "true" : "false");
  }
  if (e.flops != 0) {
    sep();
    os << "\"flops\":" << e.flops;
  }
  if (e.bytes != 0) {
    sep();
    os << "\"bytes\":" << e.bytes;
  }
  if (e.units != 0) {
    sep();
    os << "\"units\":" << e.units;
  }
  if (e.value != 0.0 || e.kind == obs::EventKind::Detection ||
      e.kind == obs::EventKind::Placement) {
    sep();
    os << "\"value\":" << e.value;
  }
  if (e.value2 != 0.0 || e.kind == obs::EventKind::Placement) {
    sep();
    os << "\"value2\":" << e.value2;
  }
  if (e.correlation >= 0) {
    sep();
    os << "\"injection_id\":" << e.correlation;
  }
  if (!e.detail.empty()) {
    sep();
    os << "\"detail\":\"";
    json_escape(os, e.detail);
    os << "\"";
  }
  os << "}";
}

void write_trace_impl(const Machine& machine,
                      const std::vector<obs::Event>* events,
                      std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  // Lane naming metadata.
  std::map<int, bool> lanes;
  for (const auto& r : machine.trace()) lanes[r.lane] = true;
  if (events != nullptr) {
    for (const auto& e : *events) {
      if (!is_machine_span(e.kind)) lanes[e.lane] = true;
    }
  }
  for (const auto& [lane, _] : lanes) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << lane_tid(lane) << ",\"args\":{\"name\":\"";
    json_escape(os, lane_name(lane));
    os << "\"}}";
  }
  // Complete events; virtual seconds -> microseconds.
  for (const auto& r : machine.trace()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    json_escape(os, r.name);
    os << "\",\"cat\":\"" << to_string(r.cls)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << lane_tid(r.lane)
       << ",\"ts\":" << r.start * 1e6 << ",\"dur\":" << (r.end - r.start) * 1e6
       << ",\"args\":{\"sm_units\":" << r.units;
    if (r.flops != 0) os << ",\"flops\":" << r.flops;
    os << "}}";
  }

  // Counter tracks ("ph":"C"): SM occupancy, copy-engine busy and
  // outstanding verification work over time, derived from the same
  // trace records as step functions over their start/end deltas.
  using Deltas = std::vector<std::pair<double, long long>>;
  Deltas sm_use, h2d_use, d2h_use, verify_use;
  for (const auto& r : machine.trace()) {
    if (r.lane >= 0) {  // GPU pool work: kernels and d2d copies
      sm_use.emplace_back(r.start, r.units);
      sm_use.emplace_back(r.end, -r.units);
    } else if (r.lane == kH2dLane) {
      h2d_use.emplace_back(r.start, 1);
      h2d_use.emplace_back(r.end, -1);
    } else if (r.lane == kD2hLane) {
      d2h_use.emplace_back(r.start, 1);
      d2h_use.emplace_back(r.end, -1);
    }
    if (r.name.rfind("verify", 0) == 0 || r.name.rfind("recalc", 0) == 0) {
      verify_use.emplace_back(r.start, 1);
      verify_use.emplace_back(r.end, -1);
    }
  }
  auto counter_track = [&](const char* name, const char* key,
                           Deltas& deltas) {
    if (deltas.empty()) return;
    std::sort(deltas.begin(), deltas.end());
    long long level = 0;
    for (std::size_t i = 0; i < deltas.size();) {
      const double t = deltas[i].first;
      for (; i < deltas.size() && deltas[i].first == t; ++i) {
        level += deltas[i].second;
      }
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << name << "\",\"ph\":\"C\",\"pid\":1,\"ts\":"
         << t * 1e6 << ",\"args\":{\"" << key << "\":" << level << "}}";
    }
  };
  counter_track("sm_units_in_use", "units", sm_use);
  counter_track("h2d_engine_busy", "copies", h2d_use);
  counter_track("d2h_engine_busy", "copies", d2h_use);
  counter_track("outstanding_verifications", "spans", verify_use);

  if (events == nullptr) {
    os << "]}";
    return;
  }

  // Semantic telemetry events as thread-scoped instant events.
  for (const auto& e : *events) {
    if (is_machine_span(e.kind)) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    json_escape(os, e.name.empty() ? to_string(e.kind) : e.name);
    os << "\",\"cat\":\"" << to_string(e.kind)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
       << lane_tid(e.lane) << ",\"ts\":" << e.time * 1e6 << ",\"args\":";
    write_event_args(os, e);
    os << "}";
  }

  // Flow arrows for each correlated fault chain. A flow needs at least
  // two points, so arrows are emitted only for injections that were
  // detected; the detection is the flow's end unless a correction or
  // checksum repair continues the chain.
  struct Chain {
    const obs::Event* injection = nullptr;
    const obs::Event* detection = nullptr;
    const obs::Event* repair = nullptr;  // first correction / chk repair
  };
  std::map<std::int64_t, Chain> chains;
  for (const auto& e : *events) {
    if (e.correlation < 0) continue;
    Chain& c = chains[e.correlation];
    switch (e.kind) {
      case obs::EventKind::FaultInjected:
        if (c.injection == nullptr) c.injection = &e;
        break;
      case obs::EventKind::Detection:
        if (c.detection == nullptr) c.detection = &e;
        break;
      case obs::EventKind::Correction:
      case obs::EventKind::ChecksumRepair:
        if (c.repair == nullptr) c.repair = &e;
        break;
      default: break;
    }
  }
  auto flow = [&](const obs::Event& e, char ph, std::int64_t id) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"fault\",\"cat\":\"fault\",\"ph\":\"" << ph
       << "\",\"id\":" << id << ",\"pid\":1,\"tid\":" << lane_tid(e.lane)
       << ",\"ts\":" << e.time * 1e6 << "}";
  };
  for (const auto& [id, c] : chains) {
    if (c.injection == nullptr || c.detection == nullptr) continue;
    flow(*c.injection, 's', id);
    flow(*c.detection, c.repair != nullptr ? 't' : 'f', id);
    if (c.repair != nullptr) flow(*c.repair, 'f', id);
  }
  os << "]}";
}

}  // namespace

void write_chrome_trace(const Machine& machine, std::ostream& os) {
  write_trace_impl(machine, nullptr, os);
}

void write_chrome_trace(const Machine& machine,
                        const std::vector<obs::Event>& events,
                        std::ostream& os) {
  write_trace_impl(machine, &events, os);
}

bool write_chrome_trace_file(const Machine& machine,
                             const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(machine, f);
  return static_cast<bool>(f);
}

bool write_chrome_trace_file(const Machine& machine,
                             const std::vector<obs::Event>& events,
                             const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(machine, events, f);
  return static_cast<bool>(f);
}

void print_trace_summary(const Machine& machine, std::ostream& os,
                         int strip_width) {
  const auto& trace = machine.trace();
  const double span = machine.makespan();
  struct LaneStat {
    long long count = 0;
    double busy = 0.0;
    std::vector<char> strip;
  };
  std::map<int, LaneStat> lanes;
  for (const auto& r : trace) {
    auto& ls = lanes[r.lane];
    ++ls.count;
    ls.busy += r.end - r.start;
    if (ls.strip.empty()) ls.strip.assign(strip_width, '.');
    if (span > 0.0) {
      int from = static_cast<int>(r.start / span * strip_width);
      int to = static_cast<int>(r.end / span * strip_width);
      from = std::clamp(from, 0, strip_width - 1);
      to = std::clamp(to, from, strip_width - 1);
      for (int i = from; i <= to; ++i) ls.strip[i] = '#';
    }
  }
  os << "trace summary — makespan " << span << " s, " << trace.size()
     << " ops";
  if (machine.trace_dropped() > 0) {
    os << " (" << machine.trace_dropped()
       << " records dropped at the trace cap of " << machine.trace_limit()
       << ")";
  }
  os << "\n";
  for (const auto& [lane, ls] : lanes) {
    const double util = span > 0.0 ? ls.busy / span : 0.0;
    os << "  " << lane_name(lane) << ": " << ls.count << " ops, busy "
       << ls.busy << " s (" << static_cast<int>(util * 100.0) << "%)\n    ["
       << std::string(ls.strip.begin(), ls.strip.end()) << "]\n";
  }
}

}  // namespace ftla::sim
