// An N-device fleet of simulated CPU+GPU nodes (docs/fleet.md).
//
// Each device is a full sim::Machine — its own memory, streams, SM pool
// and copy engines — advancing its own virtual clock. The devices share
// one host-interconnect ResourceTimeline, so concurrent H2D/D2H
// transfers from different devices contend for link slots exactly like
// kernels contend for SM units. The fleet clock is the reconciliation
// of the per-device clocks: now() is the latest instant any device has
// reached; the service layer advances an idle device's clock before
// placing work on it so causality across devices is preserved.
//
// Device-level faults are armed here (fail-stop at a virtual instant,
// transient stall windows, per-device degradation factors) and
// *discovered* by whoever drives the device: a lost device throws
// DeviceLostError from every entry point, and the scheduler records the
// discovery with mark_lost().
#pragma once

#include <memory>
#include <vector>

#include "sim/machine.hpp"
#include "sim/profile.hpp"
#include "sim/timeline.hpp"

namespace ftla::sim {

/// Shape of a homogeneous fleet: `devices` identical machines sharing a
/// host interconnect with `link_capacity` concurrent transfer slots.
struct FleetProfile {
  MachineProfile device;
  int devices = 2;
  /// Concurrent H2D/D2H transfers the shared host link sustains at full
  /// bandwidth; further transfers queue (PCIe-switch / root-complex
  /// contention).
  int link_capacity = 1;
};

enum class DeviceState { Healthy, Degraded, Lost };
const char* to_string(DeviceState s);

class Fleet {
 public:
  Fleet(FleetProfile profile, ExecutionMode mode);
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(devices_.size());
  }
  [[nodiscard]] Machine& device(int id);
  [[nodiscard]] const Machine& device(int id) const;
  [[nodiscard]] const FleetProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] bool numeric() const noexcept {
    return mode_ == ExecutionMode::Numeric;
  }

  // ----- device health ----------------------------------------------
  [[nodiscard]] DeviceState state(int id) const;
  /// Devices not (yet) discovered lost.
  [[nodiscard]] int usable_count() const;
  /// Soft-error rate multiplier of a degraded device (1.0 = healthy).
  [[nodiscard]] double degrade_factor(int id) const;

  /// Arms a fail-stop loss on device `id` at virtual instant `at`
  /// (fault-plan side; the scheduler does not see it until the device
  /// throws).
  void arm_loss(int id, double at);
  /// Arms a transient stall window [from, to) on device `id`.
  void arm_stall(int id, double from, double to);
  /// Marks device `id` degraded: its soft-error arrival rate is scaled
  /// by `rate_multiplier` (and the scheduler may deprioritize it).
  void mark_degraded(int id, double rate_multiplier);
  /// Records the scheduler's *discovery* of a device loss (after a
  /// DeviceLostError unwound out of a job).
  void mark_lost(int id);
  [[nodiscard]] int losses_discovered() const noexcept { return losses_; }

  // ----- clocks ------------------------------------------------------
  /// Fleet clock: the latest virtual instant any device has reached.
  [[nodiscard]] double now() const;
  /// Completion time of everything issued fleet-wide.
  [[nodiscard]] double makespan() const;

  [[nodiscard]] ResourceTimeline& link() noexcept { return link_; }
  [[nodiscard]] const ResourceTimeline& link() const noexcept {
    return link_;
  }

 private:
  FleetProfile profile_;
  ExecutionMode mode_;
  ResourceTimeline link_;
  std::vector<std::unique_ptr<Machine>> devices_;
  std::vector<DeviceState> states_;
  std::vector<double> degrade_;
  int losses_ = 0;
};

}  // namespace ftla::sim
