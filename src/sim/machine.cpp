#include "sim/machine.hpp"

#include <algorithm>
#include <string>

namespace ftla::sim {

DeviceLostError::DeviceLostError(int device, double at)
    : std::runtime_error("device " + std::to_string(device) +
                         " lost at virtual t=" + std::to_string(at)),
      device_(device),
      at_(at) {}

std::int64_t SimStats::total_gpu_flops() const {
  std::int64_t total = 0;
  for (const auto& [cls, s] : gpu) total += s.flops;
  return total;
}

// ----- DeviceBuffer --------------------------------------------------

double* DeviceBuffer::data() {
  FTLA_CHECK_MSG(machine_ != nullptr && machine_->numeric(),
                 "device data is only addressable in Numeric mode");
  return storage_.data();
}

const double* DeviceBuffer::data() const {
  FTLA_CHECK_MSG(machine_ != nullptr && machine_->numeric(),
                 "device data is only addressable in Numeric mode");
  return storage_.data();
}

MatrixView<double> DeviceBuffer::view(std::int64_t off, int rows, int cols,
                                      int ld) {
  FTLA_CHECK(off >= 0 &&
             off + static_cast<std::int64_t>(ld) * (cols - 1) + rows <=
                 count_);
  return MatrixView<double>(data() + off, rows, cols, ld);
}

ConstMatrixView<double> DeviceBuffer::view(std::int64_t off, int rows,
                                           int cols, int ld) const {
  FTLA_CHECK(off >= 0 &&
             off + static_cast<std::int64_t>(ld) * (cols - 1) + rows <=
                 count_);
  return ConstMatrixView<double>(data() + off, rows, cols, ld);
}

void DeviceBuffer::move_from(DeviceBuffer& other) noexcept {
  machine_ = other.machine_;
  storage_ = std::move(other.storage_);
  count_ = other.count_;
  other.machine_ = nullptr;
  other.count_ = 0;
}

void DeviceBuffer::release() noexcept {
  if (machine_ != nullptr) {
    machine_->device_bytes_in_use_ -= bytes();
    machine_ = nullptr;
    storage_.clear();
    count_ = 0;
  }
}

// ----- Machine --------------------------------------------------------

Machine::Machine(MachineProfile profile, ExecutionMode mode)
    : profile_(std::move(profile)),
      mode_(mode),
      gpu_pool_(profile_.sm_count + profile_.coexec_spare_units) {
  streams_.push_back(StreamState{});  // stream 0 = default stream
}

void Machine::add_stall(double from, double to) {
  FTLA_CHECK(from >= 0.0 && to >= from);
  const auto w = std::make_pair(from, to);
  stalls_.insert(std::upper_bound(stalls_.begin(), stalls_.end(), w), w);
}

void Machine::tick() {
  // Windows are sorted by start, so chained stalls apply in one pass.
  for (const auto& [from, to] : stalls_) {
    if (host_time_ >= from && host_time_ < to) host_time_ = to;
  }
  if (host_time_ >= fail_at_) throw DeviceLostError(device_id_, fail_at_);
}

double Machine::reserve_link(double earliest, double dur) {
  if (host_link_ == nullptr) return earliest;
  return host_link_->allocate(earliest, dur, 1);
}

DeviceBuffer Machine::alloc(std::int64_t count) {
  tick();
  FTLA_CHECK(count >= 0);
  DeviceBuffer buf;
  buf.machine_ = this;
  buf.count_ = count;
  if (numeric()) {
    buf.storage_.assign(static_cast<std::size_t>(count), 0.0);
  }
  device_bytes_in_use_ += buf.bytes();
  FTLA_CHECK_MSG(device_bytes_in_use_ <= profile_.gpu_memory_bytes,
                 "simulated device memory exhausted");
  return buf;
}

StreamId Machine::create_stream() {
  tick();
  streams_.push_back(StreamState{});
  return static_cast<StreamId>(streams_.size() - 1);
}

EventId Machine::record_event(StreamId s) {
  tick();
  FTLA_CHECK(s >= 0 && s < stream_count());
  host_time_ += profile_.host_call_overhead_s;
  events_.push_back(std::max(streams_[s].last_end, host_time_));
  return static_cast<EventId>(events_.size() - 1);
}

void Machine::stream_wait_event(StreamId s, EventId e) {
  tick();
  FTLA_CHECK(s >= 0 && s < stream_count());
  FTLA_CHECK(e >= 0 && e < static_cast<EventId>(events_.size()));
  host_time_ += profile_.host_call_overhead_s;
  streams_[s].last_end = std::max(streams_[s].last_end, events_[e]);
}

void Machine::sync_stream(StreamId s) {
  tick();
  FTLA_CHECK(s >= 0 && s < stream_count());
  host_time_ = std::max(host_time_, streams_[s].last_end);
  note_sync("sync_stream");
}

void Machine::sync_event(EventId e) {
  tick();
  FTLA_CHECK(e >= 0 && e < static_cast<EventId>(events_.size()));
  host_time_ = std::max(host_time_, events_[e]);
  note_sync("sync_event");
}

void Machine::sync_all() {
  tick();
  double t = host_time_;
  for (const auto& st : streams_) t = std::max(t, st.last_end);
  t = std::max({t, h2d_free_, d2h_free_, gpu_pool_.last_end()});
  host_time_ = t;
  note_sync("sync_all");
}

int Machine::resolve_units(const KernelDesc& d) const {
  int units = d.sm_units > 0 ? d.sm_units : profile_.default_sm_units(d.cls);
  units = std::min(units, profile_.sm_count);
  // When the concurrent-kernel limit N is tighter than the SM pool,
  // inflate the footprint so at most N kernels ever co-run.
  const int min_units =
      (profile_.sm_count + profile_.max_concurrent_kernels - 1) /
      profile_.max_concurrent_kernels;
  return std::max(units, min_units);
}

double Machine::kernel_duration(const KernelDesc& d, int units) const {
  double dur = profile_.kernel_launch_overhead_s;
  if (d.flops > 0) {
    const double rate = profile_.gpu_rate_gflops(d.cls, units) * 1e9;
    dur += static_cast<double>(d.flops) / rate;
  }
  return dur;
}

void Machine::note_trace(std::string name, KernelClass cls, int lane,
                         double start, double end, int units,
                         std::int64_t flops) {
  if (!trace_enabled_) return;
  if (trace_.size() >= trace_limit_) {
    ++trace_dropped_;
    return;
  }
  trace_.push_back(
      TraceRecord{std::move(name), cls, lane, start, end, units, flops});
}

void Machine::note_span(obs::EventKind kind, const std::string& name,
                        KernelClass cls, int lane, double start, double end,
                        std::int64_t flops, std::int64_t bytes, int units) {
  if (spans_ != nullptr) {
    spans_->record(kind, name, to_string(cls), lane, start, end, flops,
                   bytes, units);
  }
  if (sink_ == nullptr) return;
  obs::Event e;
  e.kind = kind;
  e.time = start;
  e.end = end;
  e.lane = lane;
  e.name = name;
  e.flops = flops;
  e.bytes = bytes;
  e.units = units;
  sink_->post(e);
}

void Machine::note_sync(const char* name) {
  if (sink_ == nullptr) return;
  obs::Event e;
  e.kind = obs::EventKind::Sync;
  e.time = host_time_;
  e.end = host_time_;
  e.lane = kHostLane;
  e.name = name;
  sink_->post(e);
}

void Machine::launch(StreamId s, const KernelDesc& d,
                     const std::function<void()>& body) {
  tick();
  FTLA_CHECK(s >= 0 && s < stream_count());
  if (numeric() && body) body();

  host_time_ += profile_.host_call_overhead_s;
  gpu_pool_.prune(std::min(host_time_, gpu_pool_.last_end()));
  // Duration comes from the units the kernel actually computes with; the
  // *footprint* may be inflated so that at most max_concurrent_kernels
  // ever co-run (a scheduling constraint, not a speedup).
  const int units =
      std::min(d.sm_units > 0 ? d.sm_units : profile_.default_sm_units(d.cls),
               profile_.sm_count);
  const double dur = kernel_duration(d, units);
  const int footprint = resolve_units(d);
  const double earliest = std::max(host_time_, streams_[s].last_end);
  const double start = gpu_pool_.allocate(earliest, dur, footprint);
  const double end = start + dur;
  streams_[s].last_end = end;

  auto& cs = stats_.gpu[d.cls];
  ++cs.count;
  cs.flops += d.flops;
  cs.busy_seconds += dur;
  note_trace(d.name, d.cls, s, start, end, units, d.flops);
  note_span(obs::EventKind::Kernel, d.name, d.cls, s, start, end, d.flops, 0,
            units);
}

void Machine::host_compute(const KernelDesc& d,
                           const std::function<void()>& body) {
  tick();
  if (numeric() && body) body();
  double dur = 0.0;
  if (d.flops > 0) {
    const double rate =
        profile_.cpu_peak_gflops * profile_.cpu_efficiency(d.cls) * 1e9;
    dur = static_cast<double>(d.flops) / rate;
  }
  const double start = host_time_;
  host_time_ += dur;
  stats_.host_busy_seconds += dur;
  auto& cs = stats_.host[d.cls];
  ++cs.count;
  cs.flops += d.flops;
  cs.busy_seconds += dur;
  note_trace(d.name, d.cls, kHostLane, start, host_time_, 0, d.flops);
  note_span(obs::EventKind::HostTask, d.name, d.cls, kHostLane, start,
            host_time_, d.flops, 0, 0);
}

void Machine::host_advance(double seconds) {
  tick();
  FTLA_CHECK(seconds >= 0.0);
  host_time_ += seconds;
}

void Machine::memcpy_h2d(DeviceBuffer& dst, std::int64_t dst_off,
                         const double* src, std::int64_t n, StreamId s,
                         bool blocking) {
  tick();
  FTLA_CHECK(s >= 0 && s < stream_count());
  FTLA_CHECK(dst_off >= 0 && dst_off + n <= dst.count());
  if (numeric()) std::copy(src, src + n, dst.data() + dst_off);

  host_time_ += profile_.host_call_overhead_s;
  const double bytes = static_cast<double>(n) * sizeof(double);
  const double dur =
      profile_.transfer_latency_s + bytes / (profile_.h2d_bandwidth_gbs * 1e9);
  const double earliest =
      std::max({host_time_, streams_[s].last_end, h2d_free_});
  const double start = reserve_link(earliest, dur);
  const double end = start + dur;
  h2d_free_ = end;
  streams_[s].last_end = end;
  ++stats_.h2d_count;
  stats_.h2d_bytes += n * static_cast<std::int64_t>(sizeof(double));
  stats_.h2d_seconds += dur;
  note_trace("h2d", KernelClass::Other, kH2dLane, start, end, 0);
  note_span(obs::EventKind::Copy, "h2d", KernelClass::Other, kH2dLane,
            start, end, 0, n * static_cast<std::int64_t>(sizeof(double)),
            0);
  if (blocking) host_time_ = std::max(host_time_, end);
  if (numeric() && n > 0) {
    note_transfer("h2d", true, dst.data() + dst_off, static_cast<int>(n), 1,
                  static_cast<int>(n), dst_off, start, end, s);
  }
}

void Machine::memcpy_d2h(double* dst, const DeviceBuffer& src,
                         std::int64_t src_off, std::int64_t n, StreamId s,
                         bool blocking) {
  tick();
  FTLA_CHECK(s >= 0 && s < stream_count());
  FTLA_CHECK(src_off >= 0 && src_off + n <= src.count());
  if (numeric()) {
    const double* p = src.data() + src_off;
    std::copy(p, p + n, dst);
  }

  host_time_ += profile_.host_call_overhead_s;
  const double bytes = static_cast<double>(n) * sizeof(double);
  const double dur =
      profile_.transfer_latency_s + bytes / (profile_.d2h_bandwidth_gbs * 1e9);
  const double earliest =
      std::max({host_time_, streams_[s].last_end, d2h_free_});
  const double start = reserve_link(earliest, dur);
  const double end = start + dur;
  d2h_free_ = end;
  streams_[s].last_end = end;
  ++stats_.d2h_count;
  stats_.d2h_bytes += n * static_cast<std::int64_t>(sizeof(double));
  stats_.d2h_seconds += dur;
  note_trace("d2h", KernelClass::Other, kD2hLane, start, end, 0);
  note_span(obs::EventKind::Copy, "d2h", KernelClass::Other, kD2hLane,
            start, end, 0, n * static_cast<std::int64_t>(sizeof(double)),
            0);
  if (blocking) host_time_ = std::max(host_time_, end);
  if (numeric() && n > 0) {
    note_transfer("d2h", false, dst, static_cast<int>(n), 1,
                  static_cast<int>(n), -1, start, end, s);
  }
}

void Machine::memcpy_h2d_2d(DeviceBuffer& dst, std::int64_t dst_off,
                            int dst_ld, const double* src, int src_ld,
                            int rows, int cols, StreamId s, bool blocking) {
  tick();
  FTLA_CHECK(rows >= 0 && cols >= 0 && dst_ld >= rows && src_ld >= rows);
  if (rows == 0 || cols == 0) return;
  FTLA_CHECK(dst_off >= 0 &&
             dst_off + static_cast<std::int64_t>(cols - 1) * dst_ld + rows <=
                 dst.count());
  if (numeric()) {
    for (int j = 0; j < cols; ++j) {
      const double* sp = src + static_cast<std::int64_t>(j) * src_ld;
      std::copy(sp, sp + rows,
                dst.data() + dst_off + static_cast<std::int64_t>(j) * dst_ld);
    }
  }
  host_time_ += profile_.host_call_overhead_s;
  const double bytes =
      static_cast<double>(rows) * cols * sizeof(double);
  const double dur =
      profile_.transfer_latency_s + bytes / (profile_.h2d_bandwidth_gbs * 1e9);
  const double earliest =
      std::max({host_time_, streams_[s].last_end, h2d_free_});
  const double start = reserve_link(earliest, dur);
  const double end = start + dur;
  h2d_free_ = end;
  streams_[s].last_end = end;
  ++stats_.h2d_count;
  stats_.h2d_bytes += static_cast<std::int64_t>(rows) * cols * 8;
  stats_.h2d_seconds += dur;
  note_trace("h2d_2d", KernelClass::Other, kH2dLane, start, end, 0);
  note_span(obs::EventKind::Copy, "h2d_2d", KernelClass::Other, kH2dLane,
            start, end, 0, static_cast<std::int64_t>(rows) * cols * 8, 0);
  if (blocking) host_time_ = std::max(host_time_, end);
  if (numeric()) {
    note_transfer("h2d_2d", true, dst.data() + dst_off, rows, cols, dst_ld,
                  dst_off, start, end, s);
  }
}

void Machine::memcpy_d2h_2d(double* dst, int dst_ld, const DeviceBuffer& src,
                            std::int64_t src_off, int src_ld, int rows,
                            int cols, StreamId s, bool blocking) {
  tick();
  FTLA_CHECK(rows >= 0 && cols >= 0 && dst_ld >= rows && src_ld >= rows);
  if (rows == 0 || cols == 0) return;
  FTLA_CHECK(src_off >= 0 &&
             src_off + static_cast<std::int64_t>(cols - 1) * src_ld + rows <=
                 src.count());
  if (numeric()) {
    for (int j = 0; j < cols; ++j) {
      const double* sp =
          src.data() + src_off + static_cast<std::int64_t>(j) * src_ld;
      std::copy(sp, sp + rows, dst + static_cast<std::int64_t>(j) * dst_ld);
    }
  }
  host_time_ += profile_.host_call_overhead_s;
  const double bytes =
      static_cast<double>(rows) * cols * sizeof(double);
  const double dur =
      profile_.transfer_latency_s + bytes / (profile_.d2h_bandwidth_gbs * 1e9);
  const double earliest =
      std::max({host_time_, streams_[s].last_end, d2h_free_});
  const double start = reserve_link(earliest, dur);
  const double end = start + dur;
  d2h_free_ = end;
  streams_[s].last_end = end;
  ++stats_.d2h_count;
  stats_.d2h_bytes += static_cast<std::int64_t>(rows) * cols * 8;
  stats_.d2h_seconds += dur;
  note_trace("d2h_2d", KernelClass::Other, kD2hLane, start, end, 0);
  note_span(obs::EventKind::Copy, "d2h_2d", KernelClass::Other, kD2hLane,
            start, end, 0, static_cast<std::int64_t>(rows) * cols * 8, 0);
  if (blocking) host_time_ = std::max(host_time_, end);
  if (numeric()) {
    note_transfer("d2h_2d", false, dst, rows, cols, dst_ld, -1, start,
                  end, s);
  }
}

void Machine::memcpy_d2d(DeviceBuffer& dst, std::int64_t dst_off,
                         const DeviceBuffer& src, std::int64_t src_off,
                         std::int64_t n, StreamId s) {
  tick();
  FTLA_CHECK(dst_off >= 0 && dst_off + n <= dst.count());
  FTLA_CHECK(src_off >= 0 && src_off + n <= src.count());
  // An on-device DMA: bandwidth-priced, occupies one SM-equivalent of
  // the pool for its duration (copies do steal some memory bandwidth).
  if (numeric()) {
    const double* p = src.data() + src_off;
    std::copy(p, p + n, dst.data() + dst_off);
  }
  host_time_ += profile_.host_call_overhead_s;
  gpu_pool_.prune(std::min(host_time_, gpu_pool_.last_end()));
  const double bytes = static_cast<double>(n) * sizeof(double);
  const double dur = profile_.kernel_launch_overhead_s +
                     bytes / (profile_.d2d_bandwidth_gbs * 1e9);
  const double earliest = std::max(host_time_, streams_[s].last_end);
  const double start = gpu_pool_.allocate(earliest, dur, 1);
  streams_[s].last_end = start + dur;
  auto& cs = stats_.gpu[KernelClass::Memset];
  ++cs.count;
  cs.busy_seconds += dur;
  note_trace("d2d", KernelClass::Memset, s, start, start + dur, 1);
  note_span(obs::EventKind::Copy, "d2d", KernelClass::Memset, s, start,
            start + dur, 0, n * static_cast<std::int64_t>(sizeof(double)), 1);
}

void Machine::note_transfer(const char* name, bool h2d, double* data,
                            int rows, int cols, int ld, std::int64_t dev_off,
                            double start, double end, StreamId s) {
  // Every numeric copy gets an ordinal, hook or not, so a recorded
  // transfer fault replays against the same copy in a later run.
  const std::int64_t seq = transfer_seq_++;
  if (!transfer_hook_) return;
  TransferCtx ctx;
  ctx.name = name;
  ctx.h2d = h2d;
  ctx.data = data;
  ctx.rows = rows;
  ctx.cols = cols;
  ctx.ld = ld;
  ctx.dev_off = dev_off;
  ctx.seq = seq;
  ctx.start = start;
  ctx.end = end;
  ctx.stream = s;
  ctx.armed = h2d ? h2d_armed_ : d2h_armed_;
  transfer_hook_(ctx);
}

double Machine::makespan() const noexcept {
  double t = host_time_;
  for (const auto& st : streams_) t = std::max(t, st.last_end);
  return std::max({t, h2d_free_, d2h_free_, gpu_pool_.last_end()});
}

double Machine::gpu_utilization() const {
  const double span = makespan();
  if (span <= 0.0) return 0.0;
  const int capacity = profile_.sm_count + profile_.coexec_spare_units;
  return gpu_pool_.busy_unit_seconds() / (span * capacity);
}

}  // namespace ftla::sim
