// Deferred column-major views into device memory.
//
// In TimingOnly mode device buffers have no storage, so code must not
// materialize raw pointers while *describing* work. DMat / DConstMat
// carry (buffer, offset, shape, ld) by value and materialize a real
// MatrixView only when .view() is called — which drivers do exclusively
// inside operation bodies, which only run in Numeric mode.
#pragma once

#include <cstdint>

#include "common/matrix.hpp"
#include "sim/machine.hpp"

namespace ftla::sim {

struct DMat {
  DeviceBuffer* buf = nullptr;
  std::int64_t off = 0;
  int rows = 0;
  int cols = 0;
  int ld = 0;

  [[nodiscard]] MatrixView<double> view() const {
    return buf->view(off, rows, cols, ld);
  }
  /// Sub-block, in elements relative to this view.
  [[nodiscard]] DMat block(int i, int j, int r, int c) const {
    FTLA_CHECK(i >= 0 && j >= 0 && i + r <= rows && j + c <= cols);
    return DMat{buf, off + static_cast<std::int64_t>(j) * ld + i, r, c, ld};
  }
};

struct DConstMat {
  const DeviceBuffer* buf = nullptr;
  std::int64_t off = 0;
  int rows = 0;
  int cols = 0;
  int ld = 0;

  DConstMat() = default;
  DConstMat(const DeviceBuffer* b, std::int64_t o, int r, int c, int l)
      : buf(b), off(o), rows(r), cols(c), ld(l) {}
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors mutable->const.
  DConstMat(const DMat& m)
      : buf(m.buf), off(m.off), rows(m.rows), cols(m.cols), ld(m.ld) {}

  [[nodiscard]] ConstMatrixView<double> view() const {
    return buf->view(off, rows, cols, ld);
  }
  [[nodiscard]] DConstMat block(int i, int j, int r, int c) const {
    FTLA_CHECK(i >= 0 && j >= 0 && i + r <= rows && j + c <= cols);
    return DConstMat{buf, off + static_cast<std::int64_t>(j) * ld + i, r, c,
                     ld};
  }
};

}  // namespace ftla::sim
