#include "sim/profiler.hpp"

#include <map>
#include <string>

namespace ftla::sim {

obs::ProfileReport build_profile(const Machine& machine,
                                 const obs::SpanStore& spans, int top_k) {
  const SimStats& stats = machine.stats();
  std::map<std::string, obs::ResourceProfile> resources;
  resources["gpu_sm"] = obs::ResourceProfile{
      machine.gpu_busy_sm_seconds(),
      static_cast<double>(machine.profile().sm_count +
                          machine.profile().coexec_spare_units)};
  resources["h2d_engine"] = obs::ResourceProfile{stats.h2d_seconds, 1.0};
  resources["d2h_engine"] = obs::ResourceProfile{stats.d2h_seconds, 1.0};
  resources["host_cpu"] = obs::ResourceProfile{stats.host_busy_seconds, 1.0};
  return obs::build_profile(spans.snapshot(), machine.makespan(), resources,
                            spans.dropped(), top_k);
}

}  // namespace ftla::sim
