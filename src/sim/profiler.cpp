#include "sim/profiler.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ftla::sim {

obs::ProfileReport build_profile(const Machine& machine,
                                 const obs::SpanStore& spans, int top_k) {
  const SimStats& stats = machine.stats();
  std::map<std::string, obs::ResourceProfile> resources;
  resources["gpu_sm"] = obs::ResourceProfile{
      machine.gpu_busy_sm_seconds(),
      static_cast<double>(machine.profile().sm_count +
                          machine.profile().coexec_spare_units)};
  resources["h2d_engine"] = obs::ResourceProfile{stats.h2d_seconds, 1.0};
  resources["d2h_engine"] = obs::ResourceProfile{stats.d2h_seconds, 1.0};
  resources["host_cpu"] = obs::ResourceProfile{stats.host_busy_seconds, 1.0};
  return obs::build_profile(spans.snapshot(), machine.makespan(), resources,
                            spans.dropped(), top_k);
}

void append_machine_timeseries(const Machine& machine,
                               obs::TimeSeriesStore* out) {
  // Step functions over the trace records' start/end deltas — the same
  // derivation trace_export.cpp uses for Chrome counter tracks.
  using Deltas = std::vector<std::pair<double, long long>>;
  Deltas sm_use;
  Deltas h2d_use;
  Deltas d2h_use;
  Deltas verify_use;
  for (const auto& r : machine.trace()) {
    if (r.lane >= 0) {  // GPU pool work: kernels and d2d copies
      sm_use.emplace_back(r.start, r.units);
      sm_use.emplace_back(r.end, -r.units);
    } else if (r.lane == kH2dLane) {
      h2d_use.emplace_back(r.start, 1);
      h2d_use.emplace_back(r.end, -1);
    } else if (r.lane == kD2hLane) {
      d2h_use.emplace_back(r.start, 1);
      d2h_use.emplace_back(r.end, -1);
    }
    if (r.name.rfind("verify", 0) == 0 || r.name.rfind("recalc", 0) == 0) {
      verify_use.emplace_back(r.start, 1);
      verify_use.emplace_back(r.end, -1);
    }
  }
  const double makespan = machine.makespan();
  const auto series = [&](const char* name, Deltas& deltas) {
    if (deltas.empty()) return;
    std::sort(deltas.begin(), deltas.end());
    long long level = 0;
    double last_t = 0.0;
    for (std::size_t i = 0; i < deltas.size();) {
      const double t = deltas[i].first;
      for (; i < deltas.size() && deltas[i].first == t; ++i) {
        level += deltas[i].second;
      }
      out->sample_gauge(name, t, static_cast<double>(level));
      last_t = t;
    }
    // Close the series at the makespan so the final (idle) level is
    // visible in the last rollup window.
    if (last_t < makespan) {
      out->sample_gauge(name, makespan, static_cast<double>(level));
    }
  };
  series("timeseries.sim.sm_units_in_use", sm_use);
  series("timeseries.sim.h2d_copies_in_flight", h2d_use);
  series("timeseries.sim.d2h_copies_in_flight", d2h_use);
  series("timeseries.sim.outstanding_verifications", verify_use);
}

}  // namespace ftla::sim
