// Trace export for the simulated node.
//
// When tracing is enabled on a Machine, every kernel, host task and DMA
// transfer is recorded with virtual start/end times. These helpers turn
// that record into:
//   * Chrome tracing JSON ("catapult" format) — open in
//     chrome://tracing or https://ui.perfetto.dev to see the GPU
//     streams, copy engines and host lane as a real timeline, including
//     how POTF2 hides under the trailing GEMM and how Opt-1's recalc
//     kernels fan out across streams.
//   * a compact per-lane ASCII utilization summary for terminals.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/machine.hpp"

namespace ftla::sim {

/// Writes the machine's trace as Chrome tracing JSON.
void write_chrome_trace(const Machine& machine, std::ostream& os);

/// Convenience: writes the JSON to a file; returns false on I/O error.
bool write_chrome_trace_file(const Machine& machine,
                             const std::string& path);

/// Prints a per-lane summary (op count, busy time, utilization) plus an
/// ASCII occupancy strip per lane.
void print_trace_summary(const Machine& machine, std::ostream& os,
                         int strip_width = 72);

}  // namespace ftla::sim
