// Trace export for the simulated node.
//
// When tracing is enabled on a Machine, every kernel, host task and DMA
// transfer is recorded with virtual start/end times. These helpers turn
// that record into:
//   * Chrome tracing JSON ("catapult" format) — open in
//     chrome://tracing or https://ui.perfetto.dev to see the GPU
//     streams, copy engines and host lane as a real timeline, including
//     how POTF2 hides under the trailing GEMM and how Opt-1's recalc
//     kernels fan out across streams.
//   * a compact per-lane ASCII utilization summary for terminals.
// Telemetry events captured through the obs layer can be merged into
// the same timeline: semantic events (fault injections, verifications,
// detections, corrections, placement decisions, recovery) appear as
// instant events on their lane, and each injection -> detection ->
// correction chain is connected with Chrome flow arrows keyed by the
// injection id, so a fault's latency window is visible as an arrow
// across the timeline.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "sim/machine.hpp"

namespace ftla::sim {

/// Writes the machine's trace as Chrome tracing JSON.
void write_chrome_trace(const Machine& machine, std::ostream& os);

/// Writes the machine's trace merged with telemetry events: semantic
/// events become instant events ("ph":"i") with their fields as args,
/// and correlated fault chains become flow arrows ("ph":"s"/"t"/"f").
/// Kernel/copy/sync events from the obs stream are skipped — the
/// machine's own trace records already provide those spans.
void write_chrome_trace(const Machine& machine,
                        const std::vector<obs::Event>& events,
                        std::ostream& os);

/// Convenience: writes the JSON to a file; returns false on I/O error.
bool write_chrome_trace_file(const Machine& machine,
                             const std::string& path);

bool write_chrome_trace_file(const Machine& machine,
                             const std::vector<obs::Event>& events,
                             const std::string& path);

/// Prints a per-lane summary (op count, busy time, utilization) plus an
/// ASCII occupancy strip per lane.
void print_trace_summary(const Machine& machine, std::ostream& os,
                         int strip_width = 72);

}  // namespace ftla::sim
