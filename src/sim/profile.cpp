#include "sim/profile.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ftla::sim {

const char* to_string(KernelClass c) {
  switch (c) {
    case KernelClass::Blas3: return "blas3";
    case KernelClass::Blas3Skinny: return "blas3_skinny";
    case KernelClass::Blas2: return "blas2";
    case KernelClass::Blas1: return "blas1";
    case KernelClass::HostPotf2: return "host_potf2";
    case KernelClass::HostChecksum: return "host_checksum";
    case KernelClass::Compare: return "compare";
    case KernelClass::Memset: return "memset";
    case KernelClass::Other: return "other";
  }
  return "?";
}

double MachineProfile::gpu_efficiency(KernelClass c) const {
  switch (c) {
    case KernelClass::Blas3: return eff_blas3;
    case KernelClass::Blas3Skinny: return eff_blas3_skinny;
    case KernelClass::Blas2: return eff_blas2;
    case KernelClass::Blas1: return eff_blas1;
    case KernelClass::Compare: return eff_blas1;
    case KernelClass::Memset: return eff_other;
    default: return eff_other;
  }
}

int MachineProfile::default_sm_units(KernelClass c) const {
  switch (c) {
    case KernelClass::Blas2:
      return std::min(blas2_sm_units, sm_count);
    case KernelClass::Blas3Skinny:
      return std::min(blas3_skinny_sm_units, sm_count);
    case KernelClass::Blas1:
    case KernelClass::Compare:
      return 1;
    default:
      return sm_count;  // large kernels occupy the whole device
  }
}

double MachineProfile::cpu_efficiency(KernelClass c) const {
  switch (c) {
    case KernelClass::HostPotf2: return cpu_eff_potf2;
    case KernelClass::HostChecksum: return cpu_eff_checksum;
    default: return cpu_eff_checksum;
  }
}

double MachineProfile::gpu_rate_gflops(KernelClass c, int units) const {
  FTLA_CHECK(units > 0 && units <= sm_count);
  const double per_sm = gpu_peak_gflops / sm_count;
  return per_sm * units * gpu_efficiency(c);
}

MachineProfile tardis() {
  MachineProfile p;
  p.name = "tardis";
  // NVIDIA Tesla M2075 (Fermi GF110): 515 GFLOP/s DP peak, 14 SMs,
  // 16-way concurrent kernels, 6 GB GDDR5, PCIe gen2.
  p.gpu_peak_gflops = 515.0;
  p.sm_count = 14;
  p.max_concurrent_kernels = 16;
  p.kernel_launch_overhead_s = 6e-6;
  p.gpu_memory_bytes = 6LL << 30;
  p.eff_blas3 = 0.62;          // ~320 GFLOP/s DGEMM, matches MAGMA on M2075
  p.eff_blas3_skinny = 0.20;
  // A lone cuBLAS dgemv on a 256x256 block reaches ~36 GFLOP/s on Fermi
  // (bandwidth/latency bound); concurrent kernels roughly double the
  // aggregate before the memory system saturates. Modeled as 7-SM
  // kernels at 14% efficiency: solo 36 GF/s, two co-run (P = 2).
  p.eff_blas2 = 0.14;
  p.blas2_sm_units = 7;
  p.blas3_skinny_sm_units = 4;
  p.coexec_spare_units = 1;    // Fermi co-execution is weak
  // 2x AMD Opteron 6272 (16 "cores" / 8 modules each, 2.1 GHz):
  // 8 DP flop/cycle/module -> ~134 GFLOP/s per socket peak.
  p.cpu_peak_gflops = 268.0;
  p.cpu_eff_potf2 = 0.06;
  p.cpu_eff_checksum = 0.30;
  p.h2d_bandwidth_gbs = 5.5;   // PCIe gen2 x16 effective
  p.d2h_bandwidth_gbs = 5.5;
  p.transfer_latency_s = 12e-6;
  p.d2d_bandwidth_gbs = 120.0; // ~GDDR5 copy throughput on the M2075
  p.magma_block_size = 256;    // MAGMA default for Fermi
  return p;
}

MachineProfile bulldozer64() {
  MachineProfile p;
  p.name = "bulldozer64";
  // NVIDIA Tesla K40c (Kepler GK110B): 1430 GFLOP/s DP peak (boost),
  // 15 SMX, 32-way concurrent kernels (Hyper-Q), 12 GB, PCIe gen3.
  p.gpu_peak_gflops = 1430.0;
  p.sm_count = 15;
  p.max_concurrent_kernels = 32;
  p.kernel_launch_overhead_s = 4e-6;
  p.gpu_memory_bytes = 12LL << 30;
  p.eff_blas3 = 0.78;          // ~1.1 TFLOP/s DGEMM on K40
  p.eff_blas3_skinny = 0.22;
  // A lone dgemv on a 512x512 block reaches ~38 GFLOP/s on the K40;
  // Hyper-Q co-runs enough of them to quadruple the aggregate (the
  // paper's much larger Opt-1 gain on this system). Modeled as 4-SM
  // kernels at 10% efficiency: solo 38 GF/s, four co-run (P = 4).
  p.eff_blas2 = 0.10;
  p.blas2_sm_units = 4;
  p.blas3_skinny_sm_units = 4;
  p.coexec_spare_units = 4;    // Hyper-Q co-runs small kernels freely
  // 4x AMD Opteron 6272.
  p.cpu_peak_gflops = 537.0;
  p.cpu_eff_potf2 = 0.05;
  p.cpu_eff_checksum = 0.30;
  p.h2d_bandwidth_gbs = 10.0;  // PCIe gen3 x16 effective
  p.d2h_bandwidth_gbs = 10.0;
  p.transfer_latency_s = 10e-6;
  p.d2d_bandwidth_gbs = 250.0; // GDDR5 copy throughput on the K40c
  p.magma_block_size = 512;    // MAGMA default for Kepler
  return p;
}

MachineProfile test_rig() {
  MachineProfile p;
  p.name = "test_rig";
  // Round numbers so tests can compute expected virtual times by hand:
  // per-SM rate = 10 GFLOP/s, all efficiencies 1, no fixed overheads.
  p.gpu_peak_gflops = 40.0;
  p.sm_count = 4;
  p.max_concurrent_kernels = 4;
  p.kernel_launch_overhead_s = 0.0;
  p.gpu_memory_bytes = 1LL << 30;
  p.eff_blas3 = 1.0;
  p.eff_blas3_skinny = 1.0;
  p.eff_blas2 = 1.0;
  p.eff_blas1 = 1.0;
  p.eff_other = 1.0;
  p.blas2_sm_units = 1;
  p.blas3_skinny_sm_units = 2;
  p.coexec_spare_units = 0;
  p.cpu_peak_gflops = 10.0;
  p.cpu_eff_potf2 = 1.0;
  p.cpu_eff_checksum = 1.0;
  p.host_call_overhead_s = 0.0;
  p.h2d_bandwidth_gbs = 1.0;
  p.d2h_bandwidth_gbs = 1.0;
  p.transfer_latency_s = 0.0;
  p.d2d_bandwidth_gbs = 10.0;
  p.magma_block_size = 8;
  return p;
}

MachineProfile ampere() {
  MachineProfile p;
  p.name = "ampere";
  // NVIDIA A100 (SXM): 9.7 TFLOP/s FP64 SIMT, 108 SMs, deep
  // concurrent-kernel support, 40 GB HBM2e, PCIe gen4 host link.
  p.gpu_peak_gflops = 9700.0;
  p.sm_count = 108;
  p.max_concurrent_kernels = 128;
  p.kernel_launch_overhead_s = 3e-6;   // launch latency has barely moved
  p.gpu_memory_bytes = 40LL << 30;
  p.eff_blas3 = 0.90;                  // ~8.7 TF/s DGEMM
  p.eff_blas3_skinny = 0.25;
  // dgemv: ~180 GF/s solo (HBM-bound), wide co-run via many streams.
  p.eff_blas2 = 0.10;
  p.blas2_sm_units = 20;               // solo ~180 GF/s, P = 5 co-run
  p.blas3_skinny_sm_units = 8;
  p.coexec_spare_units = 12;           // modern GPUs co-schedule freely
  // 2x 64-core server CPUs, ~4 TFLOP/s DP peak combined.
  p.cpu_peak_gflops = 4000.0;
  p.cpu_eff_potf2 = 0.05;
  p.cpu_eff_checksum = 0.30;
  p.h2d_bandwidth_gbs = 24.0;          // PCIe gen4 x16 effective
  p.d2h_bandwidth_gbs = 24.0;
  p.transfer_latency_s = 8e-6;
  p.d2d_bandwidth_gbs = 1300.0;        // HBM2e copy throughput
  p.magma_block_size = 1024;
  return p;
}

}  // namespace ftla::sim
