#include "sim/gpublas.hpp"

#include "blas/level2.hpp"
#include "blas/level3.hpp"

namespace ftla::sim::gpublas {

void gemm(Machine& m, StreamId s, Trans ta, Trans tb, double alpha,
          DConstMat a, DConstMat b, double beta, DMat c, KernelClass cls) {
  const std::int64_t k = ta == Trans::No ? a.cols : a.rows;
  KernelDesc d{"gemm", cls, blas::gemm_flops(c.rows, c.cols, k), 0};
  m.launch(s, d, [=] {
    blas::gemm(ta, tb, alpha, a.view(), b.view(), beta, c.view());
  });
}

void syrk(Machine& m, StreamId s, Uplo uplo, Trans trans, double alpha,
          DConstMat a, double beta, DMat c, KernelClass cls) {
  const std::int64_t k = trans == Trans::No ? a.cols : a.rows;
  KernelDesc d{"syrk", cls, blas::syrk_flops(c.rows, k), 0};
  m.launch(s, d, [=] {
    blas::syrk(uplo, trans, alpha, a.view(), beta, c.view());
  });
}

void trsm(Machine& m, StreamId s, Side side, Uplo uplo, Trans trans,
          Diag diag, double alpha, DConstMat a, DMat b, KernelClass cls) {
  KernelDesc d{"trsm", cls, blas::trsm_flops(side, b.rows, b.cols), 0};
  m.launch(s, d, [=] {
    blas::trsm(side, uplo, trans, diag, alpha, a.view(), b.view());
  });
}

void checksum_gemv(Machine& m, StreamId s, bool weighted, DConstMat a,
                   DMat out_row) {
  FTLA_CHECK(out_row.rows == 1 && out_row.cols == a.cols);
  KernelDesc d{"chk_gemv", KernelClass::Blas2,
               blas::gemv_flops(a.rows, a.cols), 0};
  m.launch(s, d, [=] {
    auto av = a.view();
    auto out = out_row.view();
    for (int j = 0; j < av.cols(); ++j) {
      double acc = 0.0;
      const double* col = &av(0, j);
      if (weighted) {
        for (int i = 0; i < av.rows(); ++i) acc += (i + 1.0) * col[i];
      } else {
        for (int i = 0; i < av.rows(); ++i) acc += col[i];
      }
      out(0, j) = acc;
    }
  });
}

void gemv(Machine& m, StreamId s, Trans trans, double alpha, DConstMat a,
          DConstMat x, double beta, DMat y) {
  KernelDesc d{"gemv", KernelClass::Blas2, blas::gemv_flops(a.rows, a.cols),
               0};
  m.launch(s, d, [=] {
    blas::gemv(trans, alpha, a.view(), x.view().data(), 1, beta,
               y.view().data(), 1);
  });
}

void fill(Machine& m, StreamId s, DMat a, double value) {
  KernelDesc d{"fill", KernelClass::Memset,
               static_cast<std::int64_t>(a.rows) * a.cols, 0};
  m.launch(s, d, [=] {
    auto av = a.view();
    for (int j = 0; j < av.cols(); ++j)
      for (int i = 0; i < av.rows(); ++i) av(i, j) = value;
  });
}

}  // namespace ftla::sim::gpublas
