// Simulator-side profile assembly: marries a SpanStore snapshot with
// the Machine's resource accounting (SM pool busy unit-seconds, copy
// engine seconds, host busy seconds) and hands both to the obs
// analyzer. Lives in sim because obs must not depend on sim headers —
// the analyzer sees resources as plain named capacities.
//
// Wiring convention (mirrors the event-sink hooks): the caller creates
// one obs::SpanStore, attaches it with Machine::set_span_store() AND
// passes it to the driver options (CholeskyOptions::profile etc.) so
// driver phase/iteration tags and machine spans land in the same store.
#pragma once

#include "obs/profile_report.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "sim/machine.hpp"

namespace ftla::sim {

/// Analyzes one finished run: call after the factorization returns.
/// Resources reported: "gpu_sm" (the SM pool, capacity sm_count +
/// coexec_spare_units), "h2d_engine"/"d2h_engine" (one DMA engine
/// each), "host_cpu" (one CPU doing modeled host work).
[[nodiscard]] obs::ProfileReport build_profile(const Machine& machine,
                                               const obs::SpanStore& spans,
                                               int top_k = 12);

/// Derives resource-occupancy gauge series from a finished run's trace
/// and appends them to `out` (same step-function derivation as the
/// Chrome-trace counter tracks): timeseries.sim.sm_units_in_use,
/// timeseries.sim.h2d_copies_in_flight,
/// timeseries.sim.d2h_copies_in_flight and
/// timeseries.sim.outstanding_verifications, each sampled at every
/// level change and closed with a final sample at the makespan.
/// Deterministic: the trace is replayed in a canonical sorted order.
void append_machine_timeseries(const Machine& machine,
                               obs::TimeSeriesStore* out);

}  // namespace ftla::sim
