#include "sim/fleet.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ftla::sim {

const char* to_string(DeviceState s) {
  switch (s) {
    case DeviceState::Healthy:
      return "healthy";
    case DeviceState::Degraded:
      return "degraded";
    case DeviceState::Lost:
      return "lost";
  }
  return "?";
}

Fleet::Fleet(FleetProfile profile, ExecutionMode mode)
    : profile_(std::move(profile)),
      mode_(mode),
      link_(std::max(1, profile_.link_capacity)) {
  FTLA_CHECK_MSG(profile_.devices >= 1, "a fleet needs at least one device");
  devices_.reserve(static_cast<std::size_t>(profile_.devices));
  for (int id = 0; id < profile_.devices; ++id) {
    auto m = std::make_unique<Machine>(profile_.device, mode_);
    m->set_device_id(id);
    m->set_host_link(&link_);
    devices_.push_back(std::move(m));
  }
  states_.assign(devices_.size(), DeviceState::Healthy);
  degrade_.assign(devices_.size(), 1.0);
}

Machine& Fleet::device(int id) {
  FTLA_CHECK(id >= 0 && id < size());
  return *devices_[static_cast<std::size_t>(id)];
}

const Machine& Fleet::device(int id) const {
  FTLA_CHECK(id >= 0 && id < size());
  return *devices_[static_cast<std::size_t>(id)];
}

DeviceState Fleet::state(int id) const {
  FTLA_CHECK(id >= 0 && id < size());
  return states_[static_cast<std::size_t>(id)];
}

int Fleet::usable_count() const {
  int n = 0;
  for (const DeviceState s : states_) n += (s != DeviceState::Lost) ? 1 : 0;
  return n;
}

double Fleet::degrade_factor(int id) const {
  FTLA_CHECK(id >= 0 && id < size());
  return degrade_[static_cast<std::size_t>(id)];
}

void Fleet::arm_loss(int id, double at) { device(id).set_fail_at(at); }

void Fleet::arm_stall(int id, double from, double to) {
  device(id).add_stall(from, to);
}

void Fleet::mark_degraded(int id, double rate_multiplier) {
  FTLA_CHECK(id >= 0 && id < size());
  FTLA_CHECK(rate_multiplier >= 1.0);
  auto& state = states_[static_cast<std::size_t>(id)];
  if (state == DeviceState::Lost) return;
  state = DeviceState::Degraded;
  degrade_[static_cast<std::size_t>(id)] = rate_multiplier;
}

void Fleet::mark_lost(int id) {
  FTLA_CHECK(id >= 0 && id < size());
  auto& state = states_[static_cast<std::size_t>(id)];
  if (state == DeviceState::Lost) return;
  state = DeviceState::Lost;
  ++losses_;
}

double Fleet::now() const {
  double t = 0.0;
  for (const auto& m : devices_) t = std::max(t, m->host_now());
  return t;
}

double Fleet::makespan() const {
  double t = 0.0;
  for (const auto& m : devices_) t = std::max(t, m->makespan());
  return t;
}

}  // namespace ftla::sim
