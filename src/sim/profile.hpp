// Machine profiles for the heterogeneous-system simulator.
//
// A MachineProfile captures everything the cost model needs about one
// CPU+GPU node: peak rates, SM count, CUDA concurrent-kernel limit, copy
// bandwidths/latencies and per-kernel-class efficiencies. Two calibrated
// presets mirror the paper's testbeds:
//   * tardis()      — 2x AMD Opteron 6272 + NVIDIA Tesla M2075 (Fermi)
//   * bulldozer64() — 4x AMD Opteron 6272 + NVIDIA Tesla K40c (Kepler)
// plus a small generic preset for fast tests.
#pragma once

#include <cstdint>
#include <string>

namespace ftla::sim {

/// Classification of simulated work; selects the efficiency factor the
/// cost model applies on top of peak rate.
enum class KernelClass {
  Blas3,           // large GEMM / SYRK / TRSM tiles: near-peak on GPU
  Blas3Skinny,     // thin GEMM-like checksum *updates* (2 x B panels)
  Blas2,           // memory-bound GEMV-like checksum *recalculation*
  Blas1,           // vector ops
  HostPotf2,       // unblocked Cholesky of one block on the CPU
  HostChecksum,    // checksum update executed on the (idle) CPU
  Compare,         // O(B) checksum comparison / correction logic
  Memset,
  Other,
};

[[nodiscard]] const char* to_string(KernelClass c);

/// Everything the discrete-event engine needs to price work on a node.
struct MachineProfile {
  std::string name;

  // --- GPU ---------------------------------------------------------
  double gpu_peak_gflops = 515.0;  ///< double-precision peak
  int sm_count = 14;               ///< streaming multiprocessors
  int max_concurrent_kernels = 16; ///< CUDA concurrent-kernel limit (N)
  double kernel_launch_overhead_s = 5e-6;  ///< per-kernel fixed cost
  std::int64_t gpu_memory_bytes = 6LL << 30;

  /// Fraction of peak a kernel of each class achieves when granted the
  /// whole machine (per-SM rate scales linearly with granted SMs).
  double eff_blas3 = 0.60;
  double eff_blas3_skinny = 0.25;
  double eff_blas2 = 0.03;
  double eff_blas1 = 0.01;
  double eff_other = 0.20;

  /// SM units a BLAS-2 checksum-recalculation kernel occupies; the rest
  /// of the pool stays free for concurrent recalc kernels (paper Opt 1:
  /// P = min(max_concurrent_kernels, sm_count / blas2_sm_units)).
  int blas2_sm_units = 2;
  /// SM units a skinny checksum-update kernel occupies.
  int blas3_skinny_sm_units = 4;

  /// Extra "virtual" SM units beyond sm_count, modeling how well the GPU
  /// co-executes small kernels alongside a device-filling BLAS-3 kernel
  /// (latency-hiding spare issue slots). Fermi's concurrent-kernel
  /// support is weak (1); Kepler's Hyper-Q co-runs aggressively (4).
  /// Large kernels request sm_count units, so these spare units are what
  /// lets a checksum-update stream overlap the main compute (Opt 2-GPU).
  int coexec_spare_units = 1;

  // --- CPU ---------------------------------------------------------
  double cpu_peak_gflops = 268.0;  ///< all sockets, double precision
  double cpu_eff_potf2 = 0.06;     ///< small panel factorization
  double cpu_eff_checksum = 0.30;  ///< multithreaded skinny GEMM
  double host_call_overhead_s = 2e-6;  ///< cost of issuing any async call

  // --- CPU <-> GPU link ---------------------------------------------
  double h2d_bandwidth_gbs = 5.5;
  double d2h_bandwidth_gbs = 5.5;
  double transfer_latency_s = 12e-6;
  /// On-device copy bandwidth (cudaMemcpyDeviceToDevice).
  double d2d_bandwidth_gbs = 120.0;

  /// MAGMA's default Cholesky block size for this GPU generation.
  int magma_block_size = 256;

  /// Efficiency factor for a GPU kernel of class `c`.
  [[nodiscard]] double gpu_efficiency(KernelClass c) const;
  /// Default SM-unit request for a GPU kernel of class `c` (0 = all).
  [[nodiscard]] int default_sm_units(KernelClass c) const;
  /// Efficiency factor for host execution of class `c`.
  [[nodiscard]] double cpu_efficiency(KernelClass c) const;

  /// Achievable GFLOP/s of a GPU kernel of class `c` granted `units` SMs.
  [[nodiscard]] double gpu_rate_gflops(KernelClass c, int units) const;
};

/// Paper testbed 1: Fermi-generation node (Tesla M2075, 6 GB, B = 256).
[[nodiscard]] MachineProfile tardis();

/// Paper testbed 2: Kepler-generation node (Tesla K40c, 12 GB, B = 512).
[[nodiscard]] MachineProfile bulldozer64();

/// Small fictional node used by unit tests: round numbers, tiny block
/// size, so expected virtual times can be computed by hand.
[[nodiscard]] MachineProfile test_rig();

/// A modern (Ampere-generation, A100-class) node, used by the
/// projection experiment: does the paper's overhead keep shrinking as
/// GPUs get faster while kernel-launch and PCIe latencies do not?
[[nodiscard]] MachineProfile ampere();

}  // namespace ftla::sim
