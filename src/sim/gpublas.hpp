// The simulated node's "cuBLAS": device BLAS entry points that execute
// the numeric payload via ftla::blas and charge the cost model with the
// routine's exact FLOP count.
//
// Every function is asynchronous with respect to the host and ordered
// within its stream, matching cuBLAS-with-streams semantics that MAGMA
// relies on.
#pragma once

#include "blas/types.hpp"
#include "sim/device_matrix.hpp"
#include "sim/machine.hpp"

namespace ftla::sim::gpublas {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

/// C := alpha * op(A) op(B) + beta * C. `cls` lets callers price skinny
/// checksum-update GEMMs differently from full tiles (paper Opt 2).
void gemm(Machine& m, StreamId s, Trans ta, Trans tb, double alpha,
          DConstMat a, DConstMat b, double beta, DMat c,
          KernelClass cls = KernelClass::Blas3);

/// C := alpha * op(A) op(A)^T + beta * C (triangle only).
void syrk(Machine& m, StreamId s, Uplo uplo, Trans trans, double alpha,
          DConstMat a, double beta, DMat c,
          KernelClass cls = KernelClass::Blas3);

/// B := alpha * op(A)^{-1} B or alpha * B op(A)^{-1}.
void trsm(Machine& m, StreamId s, Side side, Uplo uplo, Trans trans,
          Diag diag, double alpha, DConstMat a, DMat b,
          KernelClass cls = KernelClass::Blas3);

/// y-row update used for checksum recalculation: computes
/// chk := v^T A for one weight vector as a BLAS-2 kernel.
/// `v` is implicit (weights 1..form selected by `weighted`):
///   weighted == false -> v = [1, 1, ..., 1]
///   weighted == true  -> v = [1, 2, ..., rows]
void checksum_gemv(Machine& m, StreamId s, bool weighted, DConstMat a,
                   DMat out_row);

/// General device GEMV (BLAS-2 pricing).
void gemv(Machine& m, StreamId s, Trans trans, double alpha, DConstMat a,
          DConstMat x, double beta, DMat y);

/// Sets a device region to a constant.
void fill(Machine& m, StreamId s, DMat a, double value);

}  // namespace ftla::sim::gpublas
