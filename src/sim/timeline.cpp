#include "sim/timeline.hpp"

#include <algorithm>
#include <iterator>

namespace ftla::sim {

double ResourceTimeline::allocate(double earliest, double duration,
                                  int units) {
  FTLA_CHECK(units > 0 && units <= capacity_);
  FTLA_CHECK(duration >= 0.0);
  FTLA_CHECK_MSG(earliest >= prune_horizon_,
                 "allocation starts before the pruned horizon");
  const int avail = capacity_ - units;

  // Usage just after `earliest` (deltas at exactly `earliest` included).
  double t = earliest;
  int usage = base_usage_;
  auto it = delta_.begin();
  for (; it != delta_.end() && it->first <= t; ++it) usage += it->second;

  // Slide the candidate start forward until [t, t+duration) fits.
  // `it` always points at the first breakpoint strictly after t, and
  // `usage` is the usage on [t, it->first).
  while (true) {
    if (usage > avail) {
      // Cannot start at t: advance to the next point where usage drops.
      FTLA_CHECK_MSG(it != delta_.end(),
                     "timeline invariant broken: usage exceeds capacity "
                     "with no future release");
      usage += it->second;
      t = it->first;
      ++it;
      continue;
    }
    // t is feasible now; verify the whole window [t, t+duration).
    bool fits = true;
    int scan_usage = usage;
    for (auto jt = it; jt != delta_.end() && jt->first < t + duration; ++jt) {
      scan_usage += jt->second;
      if (scan_usage > avail) {
        // Conflict inside the window: restart from this breakpoint.
        usage = scan_usage;
        t = jt->first;
        it = std::next(jt);
        fits = false;
        break;
      }
    }
    if (fits) break;
  }

  delta_[t] += units;
  delta_[t + duration] -= units;
  busy_unit_seconds_ += duration * units;
  last_end_ = std::max(last_end_, t + duration);
  return t;
}

int ResourceTimeline::usage_at(double t) const {
  if (t < prune_horizon_) return 0;  // history discarded
  int usage = base_usage_;
  for (const auto& [time, d] : delta_) {
    if (time > t) break;
    usage += d;
  }
  return usage;
}

void ResourceTimeline::prune(double t) {
  if (t <= prune_horizon_) return;
  auto it = delta_.begin();
  while (it != delta_.end() && it->first <= t) {
    base_usage_ += it->second;
    it = delta_.erase(it);
  }
  prune_horizon_ = t;
}

}  // namespace ftla::sim
