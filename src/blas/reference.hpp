// Deliberately naive, obviously-correct reference implementations used
// as test oracles for the optimized routines in level2/level3. They are
// written element-wise with a generic op() accessor — a completely
// different code shape from the production loops — so a shared bug is
// unlikely.
#pragma once

#include "blas/types.hpp"
#include "common/matrix.hpp"

namespace ftla::blas::ref {

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView<double> a,
          ConstMatrixView<double> b, double beta, MatrixView<double> c);

void syrk(Uplo uplo, Trans trans, double alpha, ConstMatrixView<double> a,
          double beta, MatrixView<double> c);

void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView<double> a, MatrixView<double> b);

void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView<double> a, MatrixView<double> b);

void gemv(Trans trans, double alpha, ConstMatrixView<double> a,
          const double* x, int incx, double beta, double* y, int incy);

/// Cholesky by the textbook jik formula (no BLAS calls at all).
void potrf(MatrixView<double> a);

}  // namespace ftla::blas::ref
