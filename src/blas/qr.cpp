#include "blas/qr.hpp"

#include <algorithm>
#include <cmath>

#include "blas/level1.hpp"
#include "blas/level3.hpp"
#include "blas/lapack.hpp"
#include "common/error.hpp"

namespace ftla::blas {

namespace {

// Generates one Householder reflector (LAPACK dlarfg): given alpha and
// x, produces v (overwriting x, v0 implicit 1) and tau so that
// H [alpha; x] = [beta; 0]. Returns beta; writes tau.
double larfg(double& alpha, double* x, int n, int incx, double* tau) {
  const double xnorm = nrm2(n, x, incx);
  if (xnorm == 0.0) {
    *tau = 0.0;
    return alpha;
  }
  double beta = std::hypot(alpha, xnorm);
  if (alpha > 0.0) beta = -beta;
  *tau = (beta - alpha) / beta;
  scal(n, 1.0 / (alpha - beta), x, incx);
  alpha = beta;
  return beta;
}

// Applies H = I - tau v v^T (v0 = 1 implicit, tail in `v`) to the
// columns of c from the left.
void apply_reflector(double tau, const double* v, int vlen,
                     MatrixView<double> c) {
  if (tau == 0.0) return;
  for (int col = 0; col < c.cols(); ++col) {
    double* cc = &c(0, col);
    double s = cc[0];
    for (int r = 0; r < vlen; ++r) s += v[r] * cc[1 + r];
    s *= tau;
    cc[0] -= s;
    for (int r = 0; r < vlen; ++r) cc[1 + r] -= v[r] * s;
  }
}

}  // namespace

void geqf2(MatrixView<double> a, double* tau) {
  const int m = a.rows();
  const int k = std::min(m, a.cols());
  for (int j = 0; j < k; ++j) {
    larfg(a(j, j), m > j + 1 ? &a(j + 1, j) : nullptr, m - j - 1, 1,
          &tau[j]);
    if (j + 1 < a.cols()) {
      const double ajj = a(j, j);
      a(j, j) = 1.0;  // temporarily expose the implicit v0
      apply_reflector(tau[j], m > j + 1 ? &a(j + 1, j) : nullptr,
                      m - j - 1, a.block(j, j + 1, m - j, a.cols() - j - 1));
      a(j, j) = ajj;
    }
  }
}

void larft(ConstMatrixView<double> v, const double* tau,
           MatrixView<double> t) {
  const int m = v.rows();
  const int k = v.cols();
  FTLA_CHECK(t.rows() == k && t.cols() == k);
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < j; ++i) t(j, i) = 0.0;  // keep T explicit upper
    if (tau[j] == 0.0) {
      for (int i = 0; i <= j; ++i) t(i, j) = 0.0;
      continue;
    }
    // w = V(:, 0:j)^T v_j with the packed format's implicit unit diag.
    for (int i = 0; i < j; ++i) {
      double s = v(j, i);  // V(j, i) * v_j(j), v_j(j) = 1
      for (int r = j + 1; r < m; ++r) s += v(r, i) * v(r, j);
      t(i, j) = -tau[j] * s;
    }
    // T(0:j, j) = T(0:j, 0:j) * t(0:j, j) (in place, upper triangular).
    for (int i = 0; i < j; ++i) {
      double s = 0.0;
      for (int l = i; l < j; ++l) s += t(i, l) * t(l, j);
      t(i, j) = s;
    }
    t(j, j) = tau[j];
  }
}

void larfb_left_t(ConstMatrixView<double> v, ConstMatrixView<double> t,
                  MatrixView<double> c) {
  const int m = c.rows();
  const int n = c.cols();
  const int k = v.cols();
  FTLA_CHECK(v.rows() == m && t.rows() == k && t.cols() == k);
  if (n == 0 || k == 0) return;
  // W = V^T C (k x n), honoring the implicit unit diagonal of V.
  Matrix<double> w(k, n);
  for (int col = 0; col < n; ++col) {
    const double* cc = &c(0, col);
    for (int i = 0; i < k; ++i) {
      double s = cc[i];
      const double* vi = &v(0, i);
      for (int r = i + 1; r < m; ++r) s += vi[r] * cc[r];
      w(i, col) = s;
    }
  }
  // W := T^T W.
  trmm(Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit, 1.0, t,
       w.view());
  // C -= V W.
  for (int col = 0; col < n; ++col) {
    double* cc = &c(0, col);
    for (int i = 0; i < k; ++i) {
      const double s = w(i, col);
      if (s == 0.0) continue;
      cc[i] -= s;
      const double* vi = &v(0, i);
      for (int r = i + 1; r < m; ++r) cc[r] -= vi[r] * s;
    }
  }
}

void geqrf(MatrixView<double> a, double* tau, int nb) {
  const int m = a.rows();
  const int n = a.cols();
  FTLA_CHECK(nb > 0);
  const int k = std::min(m, n);
  for (int j = 0; j < k; j += nb) {
    const int jb = std::min(nb, k - j);
    auto panel = a.block(j, j, m - j, jb);
    geqf2(panel, tau + j);
    const int right = n - j - jb;
    if (right > 0) {
      Matrix<double> t(jb, jb);
      larft(ConstMatrixView<double>(panel), tau + j, t.view());
      larfb_left_t(ConstMatrixView<double>(panel),
                   ConstMatrixView<double>(t.view()),
                   a.block(j, j + jb, m - j, right));
    }
  }
}

void apply_q(ConstMatrixView<double> packed, const double* tau,
             MatrixView<double> c, bool transpose) {
  const int m = packed.rows();
  const int k = std::min(m, packed.cols());
  FTLA_CHECK(c.rows() == m);
  // Q = H_1 H_2 ... H_k, each H symmetric: Q^T applies them forward,
  // Q applies them backward.
  std::vector<double> vtail(static_cast<std::size_t>(m));
  auto apply_one = [&](int j) {
    const int tail = m - j - 1;
    for (int r = 0; r < tail; ++r) vtail[r] = packed(j + 1 + r, j);
    apply_reflector(tau[j], vtail.data(), tail,
                    c.block(j, 0, m - j, c.cols()));
  };
  if (transpose) {
    for (int j = 0; j < k; ++j) apply_one(j);
  } else {
    for (int j = k - 1; j >= 0; --j) apply_one(j);
  }
}

double qr_residual(ConstMatrixView<double> a_original,
                   ConstMatrixView<double> packed, const double* tau) {
  const int n = a_original.rows();
  FTLA_CHECK(a_original.cols() == n && packed.rows() == n &&
             packed.cols() == n);
  // A_rec = Q [R] with R the upper triangle of the packed factor.
  Matrix<double> rec(n, n, 0.0);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) rec(i, j) = packed(i, j);
  }
  apply_q(packed, tau, rec.view(), /*transpose=*/false);
  double scale = 0.0, ssq = 1.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const double r = std::abs(a_original(i, j) - rec(i, j));
      if (r != 0.0) {
        if (scale < r) {
          const double q = scale / r;
          ssq = 1.0 + ssq * q * q;
          scale = r;
        } else {
          const double q = r / scale;
          ssq += q * q;
        }
      }
    }
  }
  const double num = scale * std::sqrt(ssq);
  const double den = lange(Norm::Fro, a_original);
  return den > 0.0 ? num / den : num;
}

}  // namespace ftla::blas
