// Householder QR substrate (LAPACK geqf2/larft/larfb subset) used by the
// fault-tolerant QR extension.
//
// Conventions follow LAPACK: reflectors are H_j = I - tau_j v_j v_j^T
// with v_j(j) = 1 implicit and v_j stored below the diagonal of the
// packed factor; R sits on and above the diagonal. A block of k
// reflectors composes into H_1 H_2 ... H_k = I - V T V^T with V the
// unit-lower panel and T upper triangular (forward columnwise larft).
#pragma once

#include "blas/types.hpp"
#include "common/matrix.hpp"

namespace ftla::blas {

/// Unblocked Householder QR of an m x k panel (LAPACK dgeqf2). On exit
/// the panel is packed (V below the diagonal, R on/above); tau[0..k)
/// receives the reflector scalars.
void geqf2(MatrixView<double> a, double* tau);

/// Forms the k x k upper-triangular block-reflector factor T for the
/// packed panel V (LAPACK dlarft, forward columnwise).
void larft(ConstMatrixView<double> v, const double* tau,
           MatrixView<double> t);

/// Applies the block reflector from the left: C := (I - V T V^T)^T C
/// = (I - V T^T V^T) C, i.e. Q_panel^T C — the trailing update of
/// blocked QR (LAPACK dlarfb, Left/Transpose/Forward/Columnwise).
/// `v` is the packed panel (unit diagonal implicit, R part ignored).
void larfb_left_t(ConstMatrixView<double> v, ConstMatrixView<double> t,
                  MatrixView<double> c);

/// Blocked Householder QR of a square n x n matrix with block size nb
/// (dgeqrf-style). tau must hold n entries.
void geqrf(MatrixView<double> a, double* tau, int nb = 64);

/// Applies Q (or Q^T) of a packed QR factorization to C in place, using
/// the unblocked reflectors (test/oracle quality, O(m^2 n)).
void apply_q(ConstMatrixView<double> packed, const double* tau,
             MatrixView<double> c, bool transpose);

/// Relative residual ||A - Q R||_F / ||A||_F for a packed square
/// factorization.
double qr_residual(ConstMatrixView<double> a_original,
                   ConstMatrixView<double> packed, const double* tau);

}  // namespace ftla::blas
