// LAPACK subset needed by the Cholesky drivers: unblocked and blocked
// Cholesky factorization, triangular solves against a factorization,
// and matrix norms / residual helpers used in tests and examples.
#pragma once

#include "blas/types.hpp"
#include "common/matrix.hpp"

namespace ftla::blas {

enum class Norm { One, Inf, Fro, Max };

/// Unblocked Cholesky factorization of the lower triangle (LAPACK dpotf2,
/// Uplo::Lower). On exit the lower triangle of `a` holds L with
/// A = L L^T; the strict upper triangle is not referenced.
/// Throws ftla::NotPositiveDefiniteError if a pivot is not positive —
/// this is the fail-stop path a storage error can trigger (paper §III).
void potf2(MatrixView<double> a);

/// Blocked Cholesky factorization (LAPACK dpotrf, Uplo::Lower) with
/// block size `nb`; right-looking variant.
void potrf(MatrixView<double> a, int nb = 64);

/// Solves A x = b for nrhs right-hand sides given the Cholesky factor L
/// in the lower triangle of `l` (LAPACK dpotrs).
void potrs(ConstMatrixView<double> l, MatrixView<double> b);

/// Unblocked LU factorization without pivoting (LAPACK dgetf2 minus the
/// row exchanges) of an m x n panel: on exit the strictly-lower part
/// holds the multipliers of unit-lower L and the upper part holds U.
/// Intended for diagonally dominant matrices, where no-pivot LU is
/// backward stable. Throws ftla::NotPositiveDefiniteError on a zero or
/// non-finite pivot (reusing the fail-stop channel).
void getf2_nopiv(MatrixView<double> a);

/// Blocked right-looking LU without pivoting (dgetrf-style) with block
/// size `nb`.
void getrf_nopiv(MatrixView<double> a, int nb = 64);

/// Relative factorization residual ||A - L U||_F / ||A||_F where the
/// unit-lower L and upper U are packed in `lu` (getrf_nopiv output).
double lu_residual(ConstMatrixView<double> a_original,
                   ConstMatrixView<double> lu);

/// Matrix norm of a general rectangular view.
double lange(Norm norm, ConstMatrixView<double> a);

/// Relative factorization residual ||A - L L^T||_F / ||A||_F, using only
/// the lower triangles (the canonical accuracy check for Cholesky).
double cholesky_residual(ConstMatrixView<double> a_original,
                         ConstMatrixView<double> l);

/// Max absolute elementwise difference between two equally sized views.
double max_abs_diff(ConstMatrixView<double> a, ConstMatrixView<double> b);

}  // namespace ftla::blas
