#include "blas/level2.hpp"

#include "common/error.hpp"

namespace ftla::blas {

void gemv(Trans trans, double alpha, ConstMatrixView<double> a,
          const double* x, int incx, double beta, double* y, int incy) {
  const int m = a.rows();
  const int n = a.cols();
  const int ylen = trans == Trans::No ? m : n;
  const int xlen = trans == Trans::No ? n : m;
  if (beta != 1.0) {
    for (int i = 0; i < ylen; ++i) y[i * incy] *= beta;
  }
  if (alpha == 0.0 || xlen == 0) return;
  if (trans == Trans::No) {
    // y += alpha * A x, traversing A by columns.
    for (int j = 0; j < n; ++j) {
      const double t = alpha * x[j * incx];
      if (t == 0.0) continue;
      const double* col = &a(0, j);
      for (int i = 0; i < m; ++i) y[i * incy] += t * col[i];
    }
  } else {
    // y_j += alpha * (column j of A) . x — each column is a dot product.
    for (int j = 0; j < n; ++j) {
      const double* col = &a(0, j);
      double s = 0.0;
      if (incx == 1) {
        for (int i = 0; i < m; ++i) s += col[i] * x[i];
      } else {
        for (int i = 0; i < m; ++i) s += col[i] * x[i * incx];
      }
      y[j * incy] += alpha * s;
    }
  }
}

void ger(double alpha, const double* x, int incx, const double* y, int incy,
         MatrixView<double> a) {
  const int m = a.rows();
  const int n = a.cols();
  if (alpha == 0.0) return;
  for (int j = 0; j < n; ++j) {
    const double t = alpha * y[j * incy];
    if (t == 0.0) continue;
    double* col = &a(0, j);
    for (int i = 0; i < m; ++i) col[i] += t * x[i * incx];
  }
}

void trsv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView<double> a,
          double* x, int incx) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n);
  const bool unit = diag == Diag::Unit;
  if ((uplo == Uplo::Lower) == (trans == Trans::No)) {
    // Forward substitution (lower/no-trans, or upper/trans behaves the
    // same traversal order with transposed access).
    for (int i = 0; i < n; ++i) {
      double s = x[i * incx];
      for (int k = 0; k < i; ++k) {
        const double aik = trans == Trans::No ? a(i, k) : a(k, i);
        s -= aik * x[k * incx];
      }
      x[i * incx] = unit ? s : s / (trans == Trans::No ? a(i, i) : a(i, i));
    }
  } else {
    // Backward substitution.
    for (int i = n - 1; i >= 0; --i) {
      double s = x[i * incx];
      for (int k = i + 1; k < n; ++k) {
        const double aik = trans == Trans::No ? a(i, k) : a(k, i);
        s -= aik * x[k * incx];
      }
      x[i * incx] = unit ? s : s / a(i, i);
    }
  }
}

void trmv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView<double> a,
          double* x, int incx) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n);
  const bool unit = diag == Diag::Unit;
  // Row-oriented form; the iteration direction is chosen so every x[k]
  // read is still unmodified when it is needed.
  auto row_value = [&](int i) {
    double s = unit ? x[i * incx] : 0.0;
    if (trans == Trans::No) {
      const int lo = uplo == Uplo::Lower ? 0 : i + (unit ? 1 : 0);
      const int hi = uplo == Uplo::Lower ? i + (unit ? 0 : 1) : n;
      for (int k = lo; k < hi; ++k) s += a(i, k) * x[k * incx];
    } else {
      const int lo = uplo == Uplo::Lower ? i + (unit ? 1 : 0) : 0;
      const int hi = uplo == Uplo::Lower ? n : i + (unit ? 0 : 1);
      for (int k = lo; k < hi; ++k) s += a(k, i) * x[k * incx];
    }
    return s;
  };
  const bool descending = (uplo == Uplo::Lower) == (trans == Trans::No);
  if (descending) {
    for (int i = n - 1; i >= 0; --i) x[i * incx] = row_value(i);
  } else {
    for (int i = 0; i < n; ++i) x[i * incx] = row_value(i);
  }
}

void syr(Uplo uplo, double alpha, const double* x, int incx,
         MatrixView<double> a) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n);
  if (alpha == 0.0) return;
  for (int j = 0; j < n; ++j) {
    const double t = alpha * x[j * incx];
    if (t == 0.0) continue;
    double* col = &a(0, j);
    if (uplo == Uplo::Lower) {
      for (int i = j; i < n; ++i) col[i] += t * x[i * incx];
    } else {
      for (int i = 0; i <= j; ++i) col[i] += t * x[i * incx];
    }
  }
}

void symv(Uplo uplo, double alpha, ConstMatrixView<double> a, const double* x,
          int incx, double beta, double* y, int incy) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n);
  for (int i = 0; i < n; ++i) y[i * incy] *= beta;
  if (alpha == 0.0) return;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      double aij;
      if (uplo == Uplo::Lower) {
        aij = i >= j ? a(i, j) : a(j, i);
      } else {
        aij = i <= j ? a(i, j) : a(j, i);
      }
      y[i * incy] += alpha * aij * x[j * incx];
    }
  }
}

}  // namespace ftla::blas
