// BLAS Level-3: matrix-matrix operations on column-major views.
//
// These are the routines MAGMA's hybrid Cholesky dispatches to the GPU
// (GEMM, SYRK, TRSM). The implementations are cache-blocked with packed
// operand panels and a register-tiled microkernel (plain C++ written so
// the compiler auto-vectorizes), parallelized over row panels through
// the shared thread pool (common/thread_pool.hpp). The naive loops in
// blas/reference.cpp remain the conformance oracle; docs/performance.md
// describes the blocking scheme and how to tune it.
#pragma once

#include "blas/types.hpp"
#include "common/matrix.hpp"

namespace ftla::blas {

using ftla::ConstMatrixView;
using ftla::MatrixView;

// Blocking parameters of the packed GEMM core (see docs/performance.md).
// Exposed so tests can probe sizes straddling the panel boundaries and
// benches can report the configuration they measured.
inline constexpr int kGemmMR = 8;    ///< microkernel rows (register tile)
inline constexpr int kGemmNR = 6;    ///< microkernel cols (register tile)
inline constexpr int kGemmMC = 120;  ///< packed-A panel rows (L2 resident)
inline constexpr int kGemmKC = 256;  ///< shared panel depth (L1/L2)
inline constexpr int kGemmNC = 1024; ///< packed-B panel cols (L3 resident)
/// Diagonal-block width of the blocked triangular routines (TRSM/TRMM)
/// and the SYRK column panel.
inline constexpr int kTriBlock = 64;

/// C := alpha * op(A) op(B) + beta * C
void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView<double> a,
          ConstMatrixView<double> b, double beta, MatrixView<double> c);

/// C := alpha * op(A) op(A)^T + beta * C, only the `uplo` triangle of the
/// n x n result is referenced/updated.
void syrk(Uplo uplo, Trans trans, double alpha, ConstMatrixView<double> a,
          double beta, MatrixView<double> c);

/// B := alpha * op(A)^{-1} B (Side::Left) or alpha * B op(A)^{-1}
/// (Side::Right), with A triangular.
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView<double> a, MatrixView<double> b);

/// B := alpha * op(A) B (Side::Left) or alpha * B op(A) (Side::Right),
/// with A triangular.
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView<double> a, MatrixView<double> b);

/// Copies the `uplo` triangle of a symmetric matrix into the other
/// triangle so the matrix becomes explicitly symmetric.
void symmetrize(Uplo stored, MatrixView<double> a);

}  // namespace ftla::blas
