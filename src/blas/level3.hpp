// BLAS Level-3: matrix-matrix operations on column-major views.
//
// These are the routines MAGMA's hybrid Cholesky dispatches to the GPU
// (GEMM, SYRK, TRSM). The implementations are cache-blocked scalar code:
// correctness and exact FLOP accounting matter here, raw speed is
// supplied by the simulator's device cost model.
#pragma once

#include "blas/types.hpp"
#include "common/matrix.hpp"

namespace ftla::blas {

using ftla::ConstMatrixView;
using ftla::MatrixView;

/// C := alpha * op(A) op(B) + beta * C
void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView<double> a,
          ConstMatrixView<double> b, double beta, MatrixView<double> c);

/// C := alpha * op(A) op(A)^T + beta * C, only the `uplo` triangle of the
/// n x n result is referenced/updated.
void syrk(Uplo uplo, Trans trans, double alpha, ConstMatrixView<double> a,
          double beta, MatrixView<double> c);

/// B := alpha * op(A)^{-1} B (Side::Left) or alpha * B op(A)^{-1}
/// (Side::Right), with A triangular.
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView<double> a, MatrixView<double> b);

/// B := alpha * op(A) B (Side::Left) or alpha * B op(A) (Side::Right),
/// with A triangular.
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView<double> a, MatrixView<double> b);

/// Copies the `uplo` triangle of a symmetric matrix into the other
/// triangle so the matrix becomes explicitly symmetric.
void symmetrize(Uplo stored, MatrixView<double> a);

}  // namespace ftla::blas
