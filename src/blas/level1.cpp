#include "blas/level1.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ftla::blas {

void axpy(int n, double alpha, const double* x, int incx, double* y,
          int incy) {
  if (n <= 0 || alpha == 0.0) return;
  if (incx == 1 && incy == 1) {
    for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
    return;
  }
  for (int i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
}

void scal(int n, double alpha, double* x, int incx) {
  if (n <= 0) return;
  if (incx == 1) {
    for (int i = 0; i < n; ++i) x[i] *= alpha;
    return;
  }
  for (int i = 0; i < n; ++i) x[i * incx] *= alpha;
}

double dot(int n, const double* x, int incx, const double* y, int incy) {
  double s = 0.0;
  if (incx == 1 && incy == 1) {
    for (int i = 0; i < n; ++i) s += x[i] * y[i];
    return s;
  }
  for (int i = 0; i < n; ++i) s += x[i * incx] * y[i * incy];
  return s;
}

double nrm2(int n, const double* x, int incx) {
  // LAPACK dnrm2-style scaled sum of squares, avoiding overflow/underflow.
  if (n <= 0) return 0.0;
  double scale = 0.0;
  double ssq = 1.0;
  for (int i = 0; i < n; ++i) {
    const double xi = std::abs(x[i * incx]);
    if (xi == 0.0) continue;
    if (scale < xi) {
      const double r = scale / xi;
      ssq = 1.0 + ssq * r * r;
      scale = xi;
    } else {
      const double r = xi / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

int iamax(int n, const double* x, int incx) {
  if (n <= 0) return -1;
  int best = 0;
  double best_abs = std::abs(x[0]);
  for (int i = 1; i < n; ++i) {
    const double v = std::abs(x[i * incx]);
    if (v > best_abs) {
      best_abs = v;
      best = i;
    }
  }
  return best;
}

void copy(int n, const double* x, int incx, double* y, int incy) {
  if (n <= 0) return;
  if (incx == 1 && incy == 1) {
    std::copy(x, x + n, y);
    return;
  }
  for (int i = 0; i < n; ++i) y[i * incy] = x[i * incx];
}

void swap(int n, double* x, int incx, double* y, int incy) {
  for (int i = 0; i < n; ++i) std::swap(x[i * incx], y[i * incy]);
}

double asum(int n, const double* x, int incx) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += std::abs(x[i * incx]);
  return s;
}

}  // namespace ftla::blas
