// BLAS Level-2: matrix-vector operations on column-major views.
//
// Vectors are passed as raw pointer + stride (BLAS convention) so the
// same routine serves matrix rows, columns and packed checksum rows.
#pragma once

#include "blas/types.hpp"
#include "common/matrix.hpp"

namespace ftla::blas {

using ftla::ConstMatrixView;
using ftla::MatrixView;

/// y := alpha * op(A) x + beta * y
void gemv(Trans trans, double alpha, ConstMatrixView<double> a,
          const double* x, int incx, double beta, double* y, int incy);

/// A := alpha * x y^T + A
void ger(double alpha, const double* x, int incx, const double* y, int incy,
         MatrixView<double> a);

/// Solves op(A) x = b in place (x on entry holds b). A triangular.
void trsv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView<double> a,
          double* x, int incx);

/// x := op(A) x with A triangular.
void trmv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView<double> a,
          double* x, int incx);

/// Symmetric rank-1 update on the `uplo` triangle: A := alpha*x*x^T + A.
void syr(Uplo uplo, double alpha, const double* x, int incx,
         MatrixView<double> a);

/// y := alpha * A x + beta * y with A symmetric, stored in `uplo`.
void symv(Uplo uplo, double alpha, ConstMatrixView<double> a, const double* x,
          int incx, double beta, double* y, int incy);

}  // namespace ftla::blas
