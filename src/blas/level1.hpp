// BLAS Level-1: vector-vector operations with BLAS-style strides.
#pragma once

#include <cstddef>

namespace ftla::blas {

/// y := alpha * x + y
void axpy(int n, double alpha, const double* x, int incx, double* y,
          int incy);

/// x := alpha * x
void scal(int n, double alpha, double* x, int incx);

/// Returns x . y
double dot(int n, const double* x, int incx, const double* y, int incy);

/// Returns the Euclidean norm of x (overflow-safe scaled accumulation).
double nrm2(int n, const double* x, int incx);

/// Returns the index (0-based) of the element of maximum absolute value;
/// returns -1 for n <= 0.
int iamax(int n, const double* x, int incx);

/// y := x
void copy(int n, const double* x, int incx, double* y, int incy);

/// x <-> y
void swap(int n, double* x, int incx, double* y, int incy);

/// Returns the sum of absolute values of x.
double asum(int n, const double* x, int incx);

}  // namespace ftla::blas
