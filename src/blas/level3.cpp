#include "blas/level3.hpp"

#include "blas/level2.hpp"
#include "common/error.hpp"

namespace ftla::blas {

namespace {

void scale_inplace(MatrixView<double> c, double beta) {
  if (beta == 1.0) return;
  for (int j = 0; j < c.cols(); ++j) {
    double* col = &c(0, j);
    if (beta == 0.0) {
      for (int i = 0; i < c.rows(); ++i) col[i] = 0.0;
    } else {
      for (int i = 0; i < c.rows(); ++i) col[i] *= beta;
    }
  }
}

}  // namespace

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView<double> a,
          ConstMatrixView<double> b, double beta, MatrixView<double> c) {
  const int m = c.rows();
  const int n = c.cols();
  const int k = ta == Trans::No ? a.cols() : a.rows();
  FTLA_CHECK((ta == Trans::No ? a.rows() : a.cols()) == m);
  FTLA_CHECK((tb == Trans::No ? b.rows() : b.cols()) == k);
  FTLA_CHECK((tb == Trans::No ? b.cols() : b.rows()) == n);

  scale_inplace(c, beta);
  if (alpha == 0.0 || k == 0) return;

  if (ta == Trans::No) {
    // Column-major friendly: C(:,j) += alpha * A(:,l) * op(B)(l,j).
    for (int j = 0; j < n; ++j) {
      double* cj = &c(0, j);
      for (int l = 0; l < k; ++l) {
        const double blj = tb == Trans::No ? b(l, j) : b(j, l);
        const double t = alpha * blj;
        if (t == 0.0) continue;
        const double* al = &a(0, l);
        for (int i = 0; i < m; ++i) cj[i] += t * al[i];
      }
    }
  } else if (tb == Trans::No) {
    // C(i,j) += alpha * dot(A(:,i), B(:,j)) — both operands columnwise.
    for (int j = 0; j < n; ++j) {
      const double* bj = &b(0, j);
      double* cj = &c(0, j);
      for (int i = 0; i < m; ++i) {
        const double* ai = &a(0, i);
        double s = 0.0;
        for (int l = 0; l < k; ++l) s += ai[l] * bj[l];
        cj[i] += alpha * s;
      }
    }
  } else {
    // A^T B^T: accumulate per (i, j) with strided access to B's rows.
    for (int j = 0; j < n; ++j) {
      double* cj = &c(0, j);
      for (int i = 0; i < m; ++i) {
        const double* ai = &a(0, i);
        double s = 0.0;
        for (int l = 0; l < k; ++l) s += ai[l] * b(j, l);
        cj[i] += alpha * s;
      }
    }
  }
}

void syrk(Uplo uplo, Trans trans, double alpha, ConstMatrixView<double> a,
          double beta, MatrixView<double> c) {
  const int n = c.rows();
  FTLA_CHECK(c.cols() == n);
  const int k = trans == Trans::No ? a.cols() : a.rows();
  FTLA_CHECK((trans == Trans::No ? a.rows() : a.cols()) == n);

  // Scale only the referenced triangle.
  for (int j = 0; j < n; ++j) {
    const int lo = uplo == Uplo::Lower ? j : 0;
    const int hi = uplo == Uplo::Lower ? n : j + 1;
    double* col = &c(0, j);
    if (beta == 0.0) {
      for (int i = lo; i < hi; ++i) col[i] = 0.0;
    } else if (beta != 1.0) {
      for (int i = lo; i < hi; ++i) col[i] *= beta;
    }
  }
  if (alpha == 0.0 || k == 0) return;

  if (trans == Trans::No) {
    // C += alpha * A A^T on the triangle: rank-1 updates per column of A.
    for (int l = 0; l < k; ++l) {
      const double* al = &a(0, l);
      for (int j = 0; j < n; ++j) {
        const double t = alpha * al[j];
        if (t == 0.0) continue;
        double* cj = &c(0, j);
        const int lo = uplo == Uplo::Lower ? j : 0;
        const int hi = uplo == Uplo::Lower ? n : j + 1;
        for (int i = lo; i < hi; ++i) cj[i] += t * al[i];
      }
    }
  } else {
    // C += alpha * A^T A: dot products of A's columns.
    for (int j = 0; j < n; ++j) {
      const double* aj = &a(0, j);
      double* cj = &c(0, j);
      const int lo = uplo == Uplo::Lower ? j : 0;
      const int hi = uplo == Uplo::Lower ? n : j + 1;
      for (int i = lo; i < hi; ++i) {
        const double* ai = &a(0, i);
        double s = 0.0;
        for (int l = 0; l < k; ++l) s += ai[l] * aj[l];
        cj[i] += alpha * s;
      }
    }
  }
}

void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView<double> a, MatrixView<double> b) {
  const int m = b.rows();
  const int n = b.cols();
  const int ka = side == Side::Left ? m : n;
  FTLA_CHECK(a.rows() == ka && a.cols() == ka);

  scale_inplace(b, alpha);
  if (side == Side::Left) {
    // op(A) X = B: solve each column of B independently.
    for (int j = 0; j < n; ++j) trsv(uplo, trans, diag, a, &b(0, j), 1);
  } else {
    // X op(A) = B  <=>  op(A)^T X^T = B^T: solve each row of B with the
    // transposed operator (stride = ld walks a row of B).
    const Trans flipped = trans == Trans::No ? Trans::Yes : Trans::No;
    for (int i = 0; i < m; ++i) trsv(uplo, flipped, diag, a, &b(i, 0), b.ld());
  }
}

void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView<double> a, MatrixView<double> b) {
  const int m = b.rows();
  const int n = b.cols();
  const int ka = side == Side::Left ? m : n;
  FTLA_CHECK(a.rows() == ka && a.cols() == ka);

  if (side == Side::Left) {
    for (int j = 0; j < n; ++j) trmv(uplo, trans, diag, a, &b(0, j), 1);
  } else {
    const Trans flipped = trans == Trans::No ? Trans::Yes : Trans::No;
    for (int i = 0; i < m; ++i) trmv(uplo, flipped, diag, a, &b(i, 0), b.ld());
  }
  scale_inplace(b, alpha);
}

void symmetrize(Uplo stored, MatrixView<double> a) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n);
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) {
      if (stored == Uplo::Lower) {
        a(j, i) = a(i, j);
      } else {
        a(i, j) = a(j, i);
      }
    }
  }
}

}  // namespace ftla::blas
