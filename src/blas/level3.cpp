#include "blas/level3.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "blas/level2.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace ftla::blas {

namespace {

// Work (in multiply-adds) below which the packed core is not worth its
// packing overhead; the campaign's 16-wide block operations and the
// 2 x B checksum updates all stay on the short path.
constexpr long long kSmallWork = 32LL * 32 * 32;
// Work above which a GEMM fans out over the global thread pool.
constexpr long long kParallelWork = 1LL << 21;

void scale_inplace(MatrixView<double> c, double beta) {
  if (beta == 1.0) return;
  for (int j = 0; j < c.cols(); ++j) {
    double* col = &c(0, j);
    if (beta == 0.0) {
      for (int i = 0; i < c.rows(); ++i) col[i] = 0.0;
    } else {
      for (int i = 0; i < c.rows(); ++i) col[i] *= beta;
    }
  }
}

/// Unblocked fallback for small problems: C += alpha * op(A) op(B) with
/// the scaling by beta already applied by the caller.
void gemm_small(Trans ta, Trans tb, double alpha, ConstMatrixView<double> a,
                ConstMatrixView<double> b, MatrixView<double> c) {
  const int m = c.rows();
  const int n = c.cols();
  const int k = ta == Trans::No ? a.cols() : a.rows();
  if (ta == Trans::No) {
    // Column-major friendly: C(:,j) += alpha * A(:,l) * op(B)(l,j).
    for (int j = 0; j < n; ++j) {
      double* cj = &c(0, j);
      for (int l = 0; l < k; ++l) {
        const double blj = tb == Trans::No ? b(l, j) : b(j, l);
        const double t = alpha * blj;
        if (t == 0.0) continue;
        const double* al = &a(0, l);
        for (int i = 0; i < m; ++i) cj[i] += t * al[i];
      }
    }
  } else if (tb == Trans::No) {
    // C(i,j) += alpha * dot(A(:,i), B(:,j)) — both operands columnwise.
    for (int j = 0; j < n; ++j) {
      const double* bj = &b(0, j);
      double* cj = &c(0, j);
      for (int i = 0; i < m; ++i) {
        const double* ai = &a(0, i);
        double s = 0.0;
        for (int l = 0; l < k; ++l) s += ai[l] * bj[l];
        cj[i] += alpha * s;
      }
    }
  } else {
    // A^T B^T: accumulate per (i, j) with strided access to B's rows.
    for (int j = 0; j < n; ++j) {
      double* cj = &c(0, j);
      for (int i = 0; i < m; ++i) {
        const double* ai = &a(0, i);
        double s = 0.0;
        for (int l = 0; l < k; ++l) s += ai[l] * b(j, l);
        cj[i] += alpha * s;
      }
    }
  }
}

// ----------------------------------------------------------------------
// Packed GEMM core (BLIS-style MC/KC/NC blocking, MR x NR microkernel)
// ----------------------------------------------------------------------

/// Packs op(A)[ic:ic+mc, pc:pc+kc] (alpha folded in) into MR-row strips;
/// partial strips are zero-padded so the microkernel always runs full
/// width. `a` is the storage view: m x k when ta == No, k x m otherwise.
void pack_a_panel(Trans ta, ConstMatrixView<double> a, double alpha,
                  int ic, int pc, int mc, int kc, double* buf) {
  for (int is = 0; is < mc; is += kGemmMR) {
    const int mr = std::min(kGemmMR, mc - is);
    double* dst = buf + static_cast<std::size_t>(is) * kc;
    for (int p = 0; p < kc; ++p) {
      double* d = dst + static_cast<std::size_t>(p) * kGemmMR;
      if (ta == Trans::No) {
        const double* col = &a(ic + is, pc + p);
        for (int i = 0; i < mr; ++i) d[i] = alpha * col[i];
      } else {
        for (int i = 0; i < mr; ++i) d[i] = alpha * a(pc + p, ic + is + i);
      }
      for (int i = mr; i < kGemmMR; ++i) d[i] = 0.0;
    }
  }
}

/// Packs op(B)[pc:pc+kc, jc:jc+nc] into NR-column strips (zero-padded).
void pack_b_panel(Trans tb, ConstMatrixView<double> b, int pc, int jc,
                  int kc, int nc, double* buf) {
  for (int js = 0; js < nc; js += kGemmNR) {
    const int nr = std::min(kGemmNR, nc - js);
    double* dst = buf + static_cast<std::size_t>(js) * kc;
    for (int p = 0; p < kc; ++p) {
      double* d = dst + static_cast<std::size_t>(p) * kGemmNR;
      if (tb == Trans::No) {
        for (int j = 0; j < nr; ++j) d[j] = b(pc + p, jc + js + j);
      } else {
        for (int j = 0; j < nr; ++j) d[j] = b(jc + js + j, pc + p);
      }
      for (int j = nr; j < kGemmNR; ++j) d[j] = 0.0;
    }
  }
}

/// C[0:mr, 0:nr] += ap * bp over kc: the register tile is a fixed-size
/// local array updated with compile-time-bounded loops, which the
/// compiler unrolls and vectorizes; the writeback clips to the live
/// mr x nr corner.
void micro_kernel(int kc, const double* ap, const double* bp, double* c,
                  int ldc, int mr, int nr) {
  double acc[kGemmMR * kGemmNR] = {};
  for (int p = 0; p < kc; ++p) {
    const double* a = ap + static_cast<std::size_t>(p) * kGemmMR;
    const double* b = bp + static_cast<std::size_t>(p) * kGemmNR;
    for (int j = 0; j < kGemmNR; ++j) {
      const double bj = b[j];
      double* accj = acc + j * kGemmMR;
      for (int i = 0; i < kGemmMR; ++i) accj[i] += a[i] * bj;
    }
  }
  if (mr == kGemmMR && nr == kGemmNR) {
    for (int j = 0; j < kGemmNR; ++j) {
      double* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
      const double* accj = acc + j * kGemmMR;
      for (int i = 0; i < kGemmMR; ++i) cj[i] += accj[i];
    }
  } else {
    for (int j = 0; j < nr; ++j) {
      double* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
      const double* accj = acc + j * kGemmMR;
      for (int i = 0; i < mr; ++i) cj[i] += accj[i];
    }
  }
}

[[nodiscard]] constexpr int round_up(int v, int to) {
  return (v + to - 1) / to * to;
}

/// C += alpha * op(A) op(B) (beta already applied). Parallelizes over MC
/// row panels: every C tile is written by exactly one lane and the KC
/// loop is a barrier between accumulation steps, so the result is
/// bit-identical for every thread count.
void gemm_core(Trans ta, ConstMatrixView<double> a, Trans tb,
               ConstMatrixView<double> b, double alpha, int k,
               MatrixView<double> c) {
  const int m = c.rows();
  const int n = c.cols();
  if (m == 0 || n == 0 || k == 0) return;

  common::ThreadPool* pool = nullptr;
  if (static_cast<long long>(m) * n * k >= kParallelWork &&
      !common::ThreadPool::in_parallel_region()) {
    common::ThreadPool& g = common::global_pool();
    if (g.threads() > 1) pool = &g;
  }

  const int kc_max = std::min(k, kGemmKC);
  const int nc_max = std::min(n, kGemmNC);
  const int mblocks = (m + kGemmMC - 1) / kGemmMC;
  const bool use_pool = pool != nullptr && mblocks > 1;
  const std::size_t apack_elems =
      static_cast<std::size_t>(round_up(std::min(m, kGemmMC), kGemmMR)) *
      kc_max;
  std::vector<double> bpack(
      static_cast<std::size_t>(round_up(nc_max, kGemmNR)) * kc_max);
  std::vector<double> apack_serial;
  if (!use_pool) apack_serial.resize(apack_elems);
  for (int jc = 0; jc < n; jc += kGemmNC) {
    const int nc = std::min(kGemmNC, n - jc);
    for (int pc = 0; pc < k; pc += kGemmKC) {
      const int kc = std::min(kGemmKC, k - pc);
      pack_b_panel(tb, b, pc, jc, kc, nc, bpack.data());

      auto run_block = [&, jc, pc, nc, kc](int ib, double* apack) {
        const int ic = ib * kGemmMC;
        const int mc = std::min(kGemmMC, m - ic);
        pack_a_panel(ta, a, alpha, ic, pc, mc, kc, apack);
        for (int js = 0; js < nc; js += kGemmNR) {
          const int nr = std::min(kGemmNR, nc - js);
          const double* bp = bpack.data() + static_cast<std::size_t>(js) * kc;
          for (int is = 0; is < mc; is += kGemmMR) {
            const int mr = std::min(kGemmMR, mc - is);
            micro_kernel(kc, apack + static_cast<std::size_t>(is) * kc, bp,
                         &c(ic + is, jc + js), c.ld(), mr, nr);
          }
        }
      };

      if (use_pool) {
        pool->parallel_for_chunks(
            0, mblocks, [&](std::int64_t lo, std::int64_t hi) {
              std::vector<double> apack(apack_elems);
              for (std::int64_t ib = lo; ib < hi; ++ib) {
                run_block(static_cast<int>(ib), apack.data());
              }
            });
      } else {
        for (int ib = 0; ib < mblocks; ++ib) {
          run_block(ib, apack_serial.data());
        }
      }
    }
  }
}

}  // namespace

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView<double> a,
          ConstMatrixView<double> b, double beta, MatrixView<double> c) {
  const int m = c.rows();
  const int n = c.cols();
  const int k = ta == Trans::No ? a.cols() : a.rows();
  FTLA_CHECK((ta == Trans::No ? a.rows() : a.cols()) == m);
  FTLA_CHECK((tb == Trans::No ? b.rows() : b.cols()) == k);
  FTLA_CHECK((tb == Trans::No ? b.cols() : b.rows()) == n);

  scale_inplace(c, beta);
  if (alpha == 0.0 || k == 0 || m == 0 || n == 0) return;

  if (static_cast<long long>(m) * n * k <= kSmallWork) {
    gemm_small(ta, tb, alpha, a, b, c);
    return;
  }
  gemm_core(ta, a, tb, b, alpha, k, c);
}

void syrk(Uplo uplo, Trans trans, double alpha, ConstMatrixView<double> a,
          double beta, MatrixView<double> c) {
  const int n = c.rows();
  FTLA_CHECK(c.cols() == n);
  const int k = trans == Trans::No ? a.cols() : a.rows();
  FTLA_CHECK((trans == Trans::No ? a.rows() : a.cols()) == n);

  // Scale only the referenced triangle.
  for (int j = 0; j < n; ++j) {
    const int lo = uplo == Uplo::Lower ? j : 0;
    const int hi = uplo == Uplo::Lower ? n : j + 1;
    double* col = &c(0, j);
    if (beta == 0.0) {
      for (int i = lo; i < hi; ++i) col[i] = 0.0;
    } else if (beta != 1.0) {
      for (int i = lo; i < hi; ++i) col[i] *= beta;
    }
  }
  if (alpha == 0.0 || k == 0 || n == 0) return;

  if (static_cast<long long>(n) * n * k <= kSmallWork) {
    if (trans == Trans::No) {
      // C += alpha * A A^T on the triangle: rank-1 updates per column.
      for (int l = 0; l < k; ++l) {
        const double* al = &a(0, l);
        for (int j = 0; j < n; ++j) {
          const double t = alpha * al[j];
          if (t == 0.0) continue;
          double* cj = &c(0, j);
          const int lo = uplo == Uplo::Lower ? j : 0;
          const int hi = uplo == Uplo::Lower ? n : j + 1;
          for (int i = lo; i < hi; ++i) cj[i] += t * al[i];
        }
      }
    } else {
      // C += alpha * A^T A: dot products of A's columns.
      for (int j = 0; j < n; ++j) {
        const double* aj = &a(0, j);
        double* cj = &c(0, j);
        const int lo = uplo == Uplo::Lower ? j : 0;
        const int hi = uplo == Uplo::Lower ? n : j + 1;
        for (int i = lo; i < hi; ++i) {
          const double* ai = &a(0, i);
          double s = 0.0;
          for (int l = 0; l < k; ++l) s += ai[l] * aj[l];
          cj[i] += alpha * s;
        }
      }
    }
    return;
  }

  // Blocked: with X = op(A) (n x k), each width-w column panel of the
  // triangle splits into a rectangle (a plain GEMM against X's other
  // rows) and a w x w diagonal block computed square into scratch, of
  // which only the referenced triangle is accumulated.
  const auto xrows = [&](int r0, int rr) {
    return trans == Trans::No ? a.block(r0, 0, rr, k)
                              : a.block(0, r0, k, rr);
  };
  const Trans tx = trans;
  const Trans txt = trans == Trans::No ? Trans::Yes : Trans::No;
  for (int j0 = 0; j0 < n; j0 += kTriBlock) {
    const int w = std::min(kTriBlock, n - j0);
    Matrix<double> tmp(w, w);
    gemm_core(tx, xrows(j0, w), txt, xrows(j0, w), alpha, k, tmp.view());
    for (int j = 0; j < w; ++j) {
      const int lo = uplo == Uplo::Lower ? j : 0;
      const int hi = uplo == Uplo::Lower ? w : j + 1;
      double* cj = &c(j0, j0 + j);
      for (int i = lo; i < hi; ++i) cj[i] += tmp(i, j);
    }
    if (uplo == Uplo::Lower && j0 + w < n) {
      gemm_core(tx, xrows(j0 + w, n - j0 - w), txt, xrows(j0, w), alpha, k,
                c.block(j0 + w, j0, n - j0 - w, w));
    } else if (uplo == Uplo::Upper && j0 > 0) {
      gemm_core(tx, xrows(0, j0), txt, xrows(j0, w), alpha, k,
                c.block(0, j0, j0, w));
    }
  }
}

namespace {

/// In-place X := X op(A)^{-1} for one diagonal block, traversed by
/// columns of X (axpy updates between full columns) instead of the old
/// stride-ld row walk. `lower_acting` means op(A) is lower triangular.
void trsm_right_block(Trans trans, Diag diag, ConstMatrixView<double> a,
                      MatrixView<double> b, bool lower_acting) {
  const int m = b.rows();
  const int w = b.cols();
  const auto tri = [&](int l, int j) {
    return trans == Trans::No ? a(l, j) : a(j, l);
  };
  if (lower_acting) {
    // B(:,j) depends on solved columns l > j: sweep right to left.
    for (int j = w - 1; j >= 0; --j) {
      double* bj = &b(0, j);
      for (int l = j + 1; l < w; ++l) {
        const double t = tri(l, j);
        if (t == 0.0) continue;
        const double* bl = &b(0, l);
        for (int i = 0; i < m; ++i) bj[i] -= t * bl[i];
      }
      if (diag == Diag::NonUnit) {
        const double d = tri(j, j);
        for (int i = 0; i < m; ++i) bj[i] /= d;
      }
    }
  } else {
    for (int j = 0; j < w; ++j) {
      double* bj = &b(0, j);
      for (int l = 0; l < j; ++l) {
        const double t = tri(l, j);
        if (t == 0.0) continue;
        const double* bl = &b(0, l);
        for (int i = 0; i < m; ++i) bj[i] -= t * bl[i];
      }
      if (diag == Diag::NonUnit) {
        const double d = tri(j, j);
        for (int i = 0; i < m; ++i) bj[i] /= d;
      }
    }
  }
}

/// In-place X := X op(A) for one diagonal block, columnwise (mirror of
/// trsm_right_block).
void trmm_right_block(Trans trans, Diag diag, ConstMatrixView<double> a,
                      MatrixView<double> b, bool lower_acting) {
  const int m = b.rows();
  const int w = b.cols();
  const auto tri = [&](int l, int j) {
    return trans == Trans::No ? a(l, j) : a(j, l);
  };
  if (lower_acting) {
    // New B(:,j) reads original columns l > j: sweep left to right.
    for (int j = 0; j < w; ++j) {
      double* bj = &b(0, j);
      if (diag == Diag::NonUnit) {
        const double d = tri(j, j);
        for (int i = 0; i < m; ++i) bj[i] *= d;
      }
      for (int l = j + 1; l < w; ++l) {
        const double t = tri(l, j);
        if (t == 0.0) continue;
        const double* bl = &b(0, l);
        for (int i = 0; i < m; ++i) bj[i] += t * bl[i];
      }
    }
  } else {
    for (int j = w - 1; j >= 0; --j) {
      double* bj = &b(0, j);
      if (diag == Diag::NonUnit) {
        const double d = tri(j, j);
        for (int i = 0; i < m; ++i) bj[i] *= d;
      }
      for (int l = 0; l < j; ++l) {
        const double t = tri(l, j);
        if (t == 0.0) continue;
        const double* bl = &b(0, l);
        for (int i = 0; i < m; ++i) bj[i] += t * bl[i];
      }
    }
  }
}

}  // namespace

void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView<double> a, MatrixView<double> b) {
  const int m = b.rows();
  const int n = b.cols();
  const int ka = side == Side::Left ? m : n;
  FTLA_CHECK(a.rows() == ka && a.cols() == ka);

  scale_inplace(b, alpha);
  if (b.empty()) return;
  const bool lower_acting = (uplo == Uplo::Lower) == (trans == Trans::No);

  if (side == Side::Left) {
    if (m <= kTriBlock) {
      // op(A) X = B: solve each column of B independently.
      for (int j = 0; j < n; ++j) trsv(uplo, trans, diag, a, &b(0, j), 1);
      return;
    }
    // Blocked substitution: small per-column solves on the diagonal
    // blocks, GEMM rank-w updates for everything else.
    if (lower_acting) {
      for (int k0 = 0; k0 < m; k0 += kTriBlock) {
        const int w = std::min(kTriBlock, m - k0);
        const ConstMatrixView<double> akk = a.block(k0, k0, w, w);
        MatrixView<double> bk = b.block(k0, 0, w, n);
        for (int j = 0; j < n; ++j) trsv(uplo, trans, diag, akk, &bk(0, j), 1);
        const int rest = m - k0 - w;
        if (rest > 0) {
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, -1.0, a.block(k0 + w, k0, rest, w),
                 bk, 1.0, b.block(k0 + w, 0, rest, n));
          } else {
            gemm(Trans::Yes, Trans::No, -1.0, a.block(k0, k0 + w, w, rest),
                 bk, 1.0, b.block(k0 + w, 0, rest, n));
          }
        }
      }
    } else {
      for (int k0 = (m - 1) / kTriBlock * kTriBlock; k0 >= 0;
           k0 -= kTriBlock) {
        const int w = std::min(kTriBlock, m - k0);
        const ConstMatrixView<double> akk = a.block(k0, k0, w, w);
        MatrixView<double> bk = b.block(k0, 0, w, n);
        for (int j = 0; j < n; ++j) trsv(uplo, trans, diag, akk, &bk(0, j), 1);
        if (k0 > 0) {
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, -1.0, a.block(0, k0, k0, w), bk, 1.0,
                 b.block(0, 0, k0, n));
          } else {
            gemm(Trans::Yes, Trans::No, -1.0, a.block(k0, 0, w, k0), bk, 1.0,
                 b.block(0, 0, k0, n));
          }
        }
      }
    }
    return;
  }

  // Side::Right: X op(A) = B over column blocks of A — GEMM updates from
  // already-solved column blocks of X, then a columnwise in-block solve.
  // (The old path ran a trsv per row of B with stride ld; this traversal
  // is column-contiguous throughout.)
  if (lower_acting) {
    for (int k0 = (n - 1) / kTriBlock * kTriBlock; k0 >= 0;
         k0 -= kTriBlock) {
      const int w = std::min(kTriBlock, n - k0);
      MatrixView<double> bk = b.block(0, k0, m, w);
      const int rest = n - k0 - w;
      if (rest > 0) {
        if (trans == Trans::No) {
          gemm(Trans::No, Trans::No, -1.0, b.block(0, k0 + w, m, rest),
               a.block(k0 + w, k0, rest, w), 1.0, bk);
        } else {
          gemm(Trans::No, Trans::Yes, -1.0, b.block(0, k0 + w, m, rest),
               a.block(k0, k0 + w, w, rest), 1.0, bk);
        }
      }
      trsm_right_block(trans, diag, a.block(k0, k0, w, w), bk,
                       /*lower_acting=*/true);
    }
  } else {
    for (int k0 = 0; k0 < n; k0 += kTriBlock) {
      const int w = std::min(kTriBlock, n - k0);
      MatrixView<double> bk = b.block(0, k0, m, w);
      if (k0 > 0) {
        if (trans == Trans::No) {
          gemm(Trans::No, Trans::No, -1.0, b.block(0, 0, m, k0),
               a.block(0, k0, k0, w), 1.0, bk);
        } else {
          gemm(Trans::No, Trans::Yes, -1.0, b.block(0, 0, m, k0),
               a.block(k0, 0, w, k0), 1.0, bk);
        }
      }
      trsm_right_block(trans, diag, a.block(k0, k0, w, w), bk,
                       /*lower_acting=*/false);
    }
  }
}

void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView<double> a, MatrixView<double> b) {
  const int m = b.rows();
  const int n = b.cols();
  const int ka = side == Side::Left ? m : n;
  FTLA_CHECK(a.rows() == ka && a.cols() == ka);
  if (b.empty()) {
    scale_inplace(b, alpha);
    return;
  }
  const bool lower_acting = (uplo == Uplo::Lower) == (trans == Trans::No);

  if (side == Side::Left) {
    if (m <= kTriBlock) {
      for (int j = 0; j < n; ++j) trmv(uplo, trans, diag, a, &b(0, j), 1);
    } else if (lower_acting) {
      // Row block i reads original row blocks above it: sweep bottom-up.
      for (int k0 = (m - 1) / kTriBlock * kTriBlock; k0 >= 0;
           k0 -= kTriBlock) {
        const int w = std::min(kTriBlock, m - k0);
        const ConstMatrixView<double> akk = a.block(k0, k0, w, w);
        MatrixView<double> bk = b.block(k0, 0, w, n);
        for (int j = 0; j < n; ++j) trmv(uplo, trans, diag, akk, &bk(0, j), 1);
        if (k0 > 0) {
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, 1.0, a.block(k0, 0, w, k0),
                 b.block(0, 0, k0, n), 1.0, bk);
          } else {
            gemm(Trans::Yes, Trans::No, 1.0, a.block(0, k0, k0, w),
                 b.block(0, 0, k0, n), 1.0, bk);
          }
        }
      }
    } else {
      // Upper-acting: row block i reads original row blocks below it.
      for (int k0 = 0; k0 < m; k0 += kTriBlock) {
        const int w = std::min(kTriBlock, m - k0);
        const ConstMatrixView<double> akk = a.block(k0, k0, w, w);
        MatrixView<double> bk = b.block(k0, 0, w, n);
        for (int j = 0; j < n; ++j) trmv(uplo, trans, diag, akk, &bk(0, j), 1);
        const int rest = m - k0 - w;
        if (rest > 0) {
          if (trans == Trans::No) {
            gemm(Trans::No, Trans::No, 1.0, a.block(k0, k0 + w, w, rest),
                 b.block(k0 + w, 0, rest, n), 1.0, bk);
          } else {
            gemm(Trans::Yes, Trans::No, 1.0, a.block(k0 + w, k0, rest, w),
                 b.block(k0 + w, 0, rest, n), 1.0, bk);
          }
        }
      }
    }
  } else if (lower_acting) {
    // Side::Right, op(A) lower: column block j reads original column
    // blocks to its right — sweep left to right, columnwise throughout.
    for (int k0 = 0; k0 < n; k0 += kTriBlock) {
      const int w = std::min(kTriBlock, n - k0);
      MatrixView<double> bk = b.block(0, k0, m, w);
      trmm_right_block(trans, diag, a.block(k0, k0, w, w), bk,
                       /*lower_acting=*/true);
      const int rest = n - k0 - w;
      if (rest > 0) {
        if (trans == Trans::No) {
          gemm(Trans::No, Trans::No, 1.0, b.block(0, k0 + w, m, rest),
               a.block(k0 + w, k0, rest, w), 1.0, bk);
        } else {
          gemm(Trans::No, Trans::Yes, 1.0, b.block(0, k0 + w, m, rest),
               a.block(k0, k0 + w, w, rest), 1.0, bk);
        }
      }
    }
  } else {
    for (int k0 = (n - 1) / kTriBlock * kTriBlock; k0 >= 0;
         k0 -= kTriBlock) {
      const int w = std::min(kTriBlock, n - k0);
      MatrixView<double> bk = b.block(0, k0, m, w);
      trmm_right_block(trans, diag, a.block(k0, k0, w, w), bk,
                       /*lower_acting=*/false);
      if (k0 > 0) {
        if (trans == Trans::No) {
          gemm(Trans::No, Trans::No, 1.0, b.block(0, 0, m, k0),
               a.block(0, k0, k0, w), 1.0, bk);
        } else {
          gemm(Trans::No, Trans::Yes, 1.0, b.block(0, 0, m, k0),
               a.block(k0, 0, w, k0), 1.0, bk);
        }
      }
    }
  }
  scale_inplace(b, alpha);
}

void symmetrize(Uplo stored, MatrixView<double> a) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n);
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) {
      if (stored == Uplo::Lower) {
        a(j, i) = a(i, j);
      } else {
        a(i, j) = a(j, i);
      }
    }
  }
}

}  // namespace ftla::blas
