// Shared BLAS/LAPACK parameter enums (LAPACK naming conventions) and
// exact floating-point-operation counts for each routine.
//
// The FLOP counters are load-bearing: the heterogeneous-system simulator
// converts them into virtual execution time, and the analytic overhead
// model (paper Tables III-VI) is validated against them.
#pragma once

#include <cstdint>

namespace ftla::blas {

enum class Trans { No, Yes };
enum class Uplo { Lower, Upper };
enum class Side { Left, Right };
enum class Diag { NonUnit, Unit };

/// FLOPs of C (m x n) += alpha * op(A) op(B) with inner dimension k.
constexpr std::int64_t gemm_flops(std::int64_t m, std::int64_t n,
                                  std::int64_t k) {
  return 2 * m * n * k;
}

/// FLOPs of a SYRK rank-k update of an n x n triangle.
constexpr std::int64_t syrk_flops(std::int64_t n, std::int64_t k) {
  return n * (n + 1) * k;
}

/// FLOPs of TRSM with an m x n right-hand side (triangle on `side`).
constexpr std::int64_t trsm_flops(Side side, std::int64_t m, std::int64_t n) {
  return side == Side::Left ? m * m * n : n * n * m;
}

/// FLOPs of GEMV with an m x n matrix.
constexpr std::int64_t gemv_flops(std::int64_t m, std::int64_t n) {
  return 2 * m * n;
}

/// FLOPs of an unblocked Cholesky factorization of an n x n block.
constexpr std::int64_t potf2_flops(std::int64_t n) {
  return n * n * n / 3 + n * n / 2;  // n^3/3 + O(n^2) (roots + divisions)
}

/// FLOPs of a full Cholesky factorization of an n x n matrix.
constexpr std::int64_t potrf_flops(std::int64_t n) { return n * n * n / 3; }

}  // namespace ftla::blas
