#include "blas/lapack.hpp"

#include <algorithm>
#include <cmath>

#include "blas/level1.hpp"
#include "blas/level3.hpp"
#include "common/error.hpp"

namespace ftla::blas {

void potf2(MatrixView<double> a) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n);
  for (int j = 0; j < n; ++j) {
    // a(j,j) -= dot(row j left of diagonal with itself)
    double d = a(j, j) - dot(j, &a(j, 0), a.ld(), &a(j, 0), a.ld());
    if (!(d > 0.0) || !std::isfinite(d)) {
      throw NotPositiveDefiniteError(j);
    }
    d = std::sqrt(d);
    a(j, j) = d;
    if (j + 1 < n) {
      // Column below the diagonal: a(j+1:, j) = (a(j+1:, j) - A21 * a(j,0:j)^T) / d
      gemm(Trans::No, Trans::Yes, -1.0, a.block(j + 1, 0, n - j - 1, j),
           a.block(j, 0, 1, j), 1.0, a.block(j + 1, j, n - j - 1, 1));
      scal(n - j - 1, 1.0 / d, &a(j + 1, j), 1);
    }
  }
}

void potrf(MatrixView<double> a, int nb) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n && nb > 0);
  for (int j = 0; j < n; j += nb) {
    const int jb = std::min(nb, n - j);
    // Update diagonal block with the panel to its left, factor it, then
    // update and solve the panel below (right-looking).
    syrk(Uplo::Lower, Trans::No, -1.0, a.block(j, 0, jb, j), 1.0,
         a.block(j, j, jb, jb));
    potf2(a.block(j, j, jb, jb));
    const int rem = n - j - jb;
    if (rem > 0) {
      gemm(Trans::No, Trans::Yes, -1.0, a.block(j + jb, 0, rem, j),
           a.block(j, 0, jb, j), 1.0, a.block(j + jb, j, rem, jb));
      trsm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0,
           a.block(j, j, jb, jb), a.block(j + jb, j, rem, jb));
    }
  }
}

void getf2_nopiv(MatrixView<double> a) {
  const int m = a.rows();
  const int n = a.cols();
  const int k = std::min(m, n);
  for (int j = 0; j < k; ++j) {
    const double p = a(j, j);
    if (p == 0.0 || !std::isfinite(p)) throw NotPositiveDefiniteError(j);
    if (j + 1 < m) {
      scal(m - j - 1, 1.0 / p, &a(j + 1, j), 1);
      if (j + 1 < n) {
        // Trailing rank-1 update: A22 -= l21 * u12^T.
        gemm(Trans::No, Trans::No, -1.0,
             a.block(j + 1, j, m - j - 1, 1), a.block(j, j + 1, 1, n - j - 1),
             1.0, a.block(j + 1, j + 1, m - j - 1, n - j - 1));
      }
    }
  }
}

void getrf_nopiv(MatrixView<double> a, int nb) {
  const int m = a.rows();
  const int n = a.cols();
  FTLA_CHECK(nb > 0);
  const int k = std::min(m, n);
  for (int j = 0; j < k; j += nb) {
    const int jb = std::min(nb, k - j);
    // Factor the panel, solve the U row block, update the trailing part.
    getf2_nopiv(a.block(j, j, m - j, jb));
    const int right = n - j - jb;
    const int below = m - j - jb;
    if (right > 0) {
      trsm(Side::Left, Uplo::Lower, Trans::No, Diag::Unit, 1.0,
           a.block(j, j, jb, jb), a.block(j, j + jb, jb, right));
      if (below > 0) {
        gemm(Trans::No, Trans::No, -1.0, a.block(j + jb, j, below, jb),
             a.block(j, j + jb, jb, right), 1.0,
             a.block(j + jb, j + jb, below, right));
      }
    }
  }
}

double lu_residual(ConstMatrixView<double> a_original,
                   ConstMatrixView<double> lu) {
  const int n = a_original.rows();
  FTLA_CHECK(a_original.cols() == n && lu.rows() == n && lu.cols() == n);
  double scale = 0.0, ssq = 1.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      // (L U)(i,j) = sum_k L(i,k) U(k,j), k <= min(i, j); L unit-lower.
      const int kmax = std::min(i, j);
      double s = 0.0;
      for (int k = 0; k < kmax; ++k) s += lu(i, k) * lu(k, j);
      s += i <= j ? lu(i, j) : lu(i, j) * lu(j, j);
      const double r = std::abs(a_original(i, j) - s);
      if (r != 0.0) {
        if (scale < r) {
          const double q = scale / r;
          ssq = 1.0 + ssq * q * q;
          scale = r;
        } else {
          const double q = r / scale;
          ssq += q * q;
        }
      }
    }
  }
  const double num = scale * std::sqrt(ssq);
  const double den = lange(Norm::Fro, a_original);
  return den > 0.0 ? num / den : num;
}

void potrs(ConstMatrixView<double> l, MatrixView<double> b) {
  FTLA_CHECK(l.rows() == l.cols() && l.rows() == b.rows());
  // A = L L^T, so x = L^{-T} (L^{-1} b).
  trsm(Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0, l, b);
  trsm(Side::Left, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0, l, b);
}

double lange(Norm norm, ConstMatrixView<double> a) {
  const int m = a.rows();
  const int n = a.cols();
  switch (norm) {
    case Norm::Max: {
      double v = 0.0;
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i) v = std::max(v, std::abs(a(i, j)));
      return v;
    }
    case Norm::One: {
      double v = 0.0;
      for (int j = 0; j < n; ++j) {
        double col = 0.0;
        for (int i = 0; i < m; ++i) col += std::abs(a(i, j));
        v = std::max(v, col);
      }
      return v;
    }
    case Norm::Inf: {
      std::vector<double> row(static_cast<std::size_t>(m), 0.0);
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < m; ++i) row[i] += std::abs(a(i, j));
      return m ? *std::max_element(row.begin(), row.end()) : 0.0;
    }
    case Norm::Fro: {
      // Scaled accumulation, same idea as nrm2.
      double scale = 0.0;
      double ssq = 1.0;
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < m; ++i) {
          const double x = std::abs(a(i, j));
          if (x == 0.0) continue;
          if (scale < x) {
            const double r = scale / x;
            ssq = 1.0 + ssq * r * r;
            scale = x;
          } else {
            const double r = x / scale;
            ssq += r * r;
          }
        }
      }
      return scale * std::sqrt(ssq);
    }
  }
  return 0.0;
}

double cholesky_residual(ConstMatrixView<double> a_original,
                         ConstMatrixView<double> l) {
  const int n = a_original.rows();
  FTLA_CHECK(a_original.cols() == n && l.rows() == n && l.cols() == n);
  // Reconstruct the lower triangle of L L^T and compare with A.
  double num_scale = 0.0, num_ssq = 1.0;
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      // (L L^T)(i,j) = dot(L(i, 0:min(i,j)), L(j, 0:min(i,j))); with
      // i >= j the shared prefix length is j+1.
      double s = 0.0;
      for (int k = 0; k <= j; ++k) s += l(i, k) * l(j, k);
      const double r = std::abs(a_original(i, j) - s);
      if (r != 0.0) {
        if (num_scale < r) {
          const double q = num_scale / r;
          num_ssq = 1.0 + num_ssq * q * q;
          num_scale = r;
        } else {
          const double q = r / num_scale;
          num_ssq += q * q;
        }
      }
    }
  }
  const double num = num_scale * std::sqrt(num_ssq);
  const double den = lange(Norm::Fro, a_original);
  return den > 0.0 ? num / den : num;
}

double max_abs_diff(ConstMatrixView<double> a, ConstMatrixView<double> b) {
  FTLA_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double v = 0.0;
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i)
      v = std::max(v, std::abs(a(i, j) - b(i, j)));
  return v;
}

}  // namespace ftla::blas
