#include "blas/reference.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ftla::blas::ref {

namespace {

double op_elem(Trans t, ConstMatrixView<double> a, int i, int j) {
  return t == Trans::No ? a(i, j) : a(j, i);
}

// Element (i, j) of the triangular operator op(A) including the implicit
// unit diagonal and implicit zeros outside the triangle.
double tri_elem(Uplo uplo, Trans trans, Diag diag, ConstMatrixView<double> a,
                int i, int j) {
  if (i == j) return diag == Diag::Unit ? 1.0 : a(i, i);
  int si = i, sj = j;  // index into storage
  if (trans == Trans::Yes) std::swap(si, sj);
  const bool in_triangle = uplo == Uplo::Lower ? si > sj : si < sj;
  return in_triangle ? a(si, sj) : 0.0;
}

}  // namespace

void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView<double> a,
          ConstMatrixView<double> b, double beta, MatrixView<double> c) {
  const int m = c.rows();
  const int n = c.cols();
  const int k = ta == Trans::No ? a.cols() : a.rows();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int l = 0; l < k; ++l) {
        s += op_elem(ta, a, i, l) * op_elem(tb, b, l, j);
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
  }
}

void syrk(Uplo uplo, Trans trans, double alpha, ConstMatrixView<double> a,
          double beta, MatrixView<double> c) {
  const int n = c.rows();
  const int k = trans == Trans::No ? a.cols() : a.rows();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const bool referenced = uplo == Uplo::Lower ? i >= j : i <= j;
      if (!referenced) continue;
      double s = 0.0;
      for (int l = 0; l < k; ++l) {
        s += op_elem(trans, a, i, l) * op_elem(trans, a, j, l);
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
  }
}

void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView<double> a, MatrixView<double> b) {
  const int m = b.rows();
  const int n = b.cols();
  // Solve by explicit substitution on a dense copy of op(A).
  if (side == Side::Left) {
    ftla::Matrix<double> t(m, m);
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < m; ++j) t(i, j) = tri_elem(uplo, trans, diag, a, i, j);
    const bool lower_acting =
        (uplo == Uplo::Lower) == (trans == Trans::No);
    for (int j = 0; j < n; ++j) {
      if (lower_acting) {
        for (int i = 0; i < m; ++i) {
          double s = alpha * b(i, j);
          for (int k = 0; k < i; ++k) s -= t(i, k) * b(k, j);
          b(i, j) = s / t(i, i);
        }
      } else {
        for (int i = m - 1; i >= 0; --i) {
          double s = alpha * b(i, j);
          for (int k = i + 1; k < m; ++k) s -= t(i, k) * b(k, j);
          b(i, j) = s / t(i, i);
        }
      }
    }
  } else {
    ftla::Matrix<double> t(n, n);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) t(i, j) = tri_elem(uplo, trans, diag, a, i, j);
    // X op(A) = alpha B, i.e. column k of X satisfies a column-ordered
    // substitution over op(A)'s columns.
    const bool lower_acting =
        (uplo == Uplo::Lower) == (trans == Trans::No);
    if (lower_acting) {
      // op(A) lower: X(:, j) uses columns j+1.. of X; go right to left.
      for (int j = n - 1; j >= 0; --j) {
        for (int i = 0; i < m; ++i) {
          double s = alpha * b(i, j);
          for (int k = j + 1; k < n; ++k) s -= b(i, k) * t(k, j);
          b(i, j) = s / t(j, j);
        }
      }
    } else {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < m; ++i) {
          double s = alpha * b(i, j);
          for (int k = 0; k < j; ++k) s -= b(i, k) * t(k, j);
          b(i, j) = s / t(j, j);
        }
      }
    }
  }
}

void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView<double> a, MatrixView<double> b) {
  const int m = b.rows();
  const int n = b.cols();
  ftla::Matrix<double> out(m, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      if (side == Side::Left) {
        for (int k = 0; k < m; ++k) {
          s += tri_elem(uplo, trans, diag, a, i, k) * b(k, j);
        }
      } else {
        for (int k = 0; k < n; ++k) {
          s += b(i, k) * tri_elem(uplo, trans, diag, a, k, j);
        }
      }
      out(i, j) = alpha * s;
    }
  }
  ftla::copy(ftla::ConstMatrixView<double>(out.view()), b);
}

void gemv(Trans trans, double alpha, ConstMatrixView<double> a,
          const double* x, int incx, double beta, double* y, int incy) {
  const int m = trans == Trans::No ? a.rows() : a.cols();
  const int n = trans == Trans::No ? a.cols() : a.rows();
  for (int i = 0; i < m; ++i) {
    double s = 0.0;
    for (int j = 0; j < n; ++j) {
      s += (trans == Trans::No ? a(i, j) : a(j, i)) * x[j * incx];
    }
    y[i * incy] = alpha * s + beta * y[i * incy];
  }
}

void potrf(MatrixView<double> a) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n);
  for (int j = 0; j < n; ++j) {
    double d = a(j, j);
    for (int k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) throw NotPositiveDefiniteError(j);
    d = std::sqrt(d);
    a(j, j) = d;
    for (int i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (int k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / d;
    }
  }
}

}  // namespace ftla::blas::ref
