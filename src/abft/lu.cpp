#include "abft/lu.hpp"

#include "abft/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "blas/types.hpp"
#include "common/error.hpp"
#include "common/fp.hpp"
#include "runtime/executor.hpp"
#include "runtime/sanitizer.hpp"
#include "sim/device_matrix.hpp"
#include "sim/gpublas.hpp"

namespace ftla::abft {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;
using sim::DConstMat;
using sim::DeviceBuffer;
using sim::DMat;
using sim::EventId;
using sim::KernelClass;
using sim::KernelDesc;
using sim::Machine;
using sim::StreamId;

namespace {

using BlockId = std::pair<int, int>;

class LuRun {
 public:
  LuRun(Machine& m, Matrix<double>* a, int n, const LuOptions& opt,
        fault::Injector* injector)
      : m_(m), a_(a), n_(n), opt_(opt), injector_(injector),
        tel_(m, opt.event_sink, opt.metrics, injector, opt.profile,
             opt.timeseries) {
    FTLA_CHECK(n_ > 0);
    FTLA_CHECK_MSG(opt_.variant == Variant::NoFt ||
                       opt_.variant == Variant::EnhancedOnline,
                   "the LU extension implements NoFt and EnhancedOnline");
    if (m_.numeric()) {
      FTLA_CHECK(a_ != nullptr && a_->rows() == n_ && a_->cols() == n_);
    }
    FTLA_CHECK(injector_ == nullptr || m_.numeric());
    b_ = opt_.block_size > 0 ? opt_.block_size
                             : m_.profile().magma_block_size;
    nb_ = (n_ + b_ - 1) / b_;
    ft_ = opt_.variant == Variant::EnhancedOnline;
  }

  CholeskyResult execute();

 private:
  [[nodiscard]] int bs(int i) const { return std::min(b_, n_ - i * b_); }
  [[nodiscard]] int off(int i) const { return i * b_; }

  [[nodiscard]] DMat data_region(int row, int col, int rows, int cols) {
    return DMat{&d_a_, static_cast<std::int64_t>(col) * n_ + row, rows, cols,
                n_};
  }
  [[nodiscard]] DMat data_block(int i, int k) {
    return data_region(off(i), off(k), bs(i), bs(k));
  }
  /// Column checksums of block (i, k): 2 rows in the (2nb x n) matrix.
  [[nodiscard]] DMat cchk_block(int i, int k) {
    return DMat{&d_cchk_,
                static_cast<std::int64_t>(off(k)) * (2 * nb_) + 2 * i,
                kChecksumRows, bs(k), 2 * nb_};
  }
  [[nodiscard]] DMat cchk_strip(int i0, int i1, int col, int cols) {
    return DMat{&d_cchk_,
                static_cast<std::int64_t>(col) * (2 * nb_) + 2 * i0,
                2 * (i1 - i0), cols, 2 * nb_};
  }
  /// Row checksums of block (i, k): 2 columns in the (n x 2nb) matrix.
  [[nodiscard]] DMat rchk_block(int i, int k) {
    return DMat{&d_rchk_, static_cast<std::int64_t>(2 * k) * n_ + off(i),
                bs(i), kChecksumRows, n_};
  }
  [[nodiscard]] DMat rchk_strip(int row, int rows, int k0, int k1) {
    return DMat{&d_rchk_, static_cast<std::int64_t>(2 * k0) * n_ + row, rows,
                2 * (k1 - k0), n_};
  }

  void allocate();
  void upload();
  void encode();
  void iterate(int j);
  void run_once();
  void final_sweep();

  void verify_col_blocks(const std::vector<BlockId>& blocks, fault::Op attr);
  void verify_row_blocks(const std::vector<BlockId>& blocks, fault::Op attr);
  /// Recalc + compare launches for one block on one stream, against the
  /// column (respectively row) checksums. Shared by the bulk batches and
  /// the DAG verify tasks so both runtimes issue identical kernels.
  void issue_col_verify(StreamId s, int bi, int bk, fault::Op attr,
                        std::int64_t pos, int iter);
  void issue_row_verify(StreamId s, int bi, int bk, fault::Op attr,
                        std::int64_t pos, int iter);
  void absorb(const VerifyOutcome& out);

  void hook_storage(fault::Op op, int j);
  void hook_computing(fault::Op op, int j);

  // ---- task-graph (DAG) runtime path (docs/runtime.md) ----
  [[nodiscard]] bool use_dag() const {
    return opt_.runtime == RuntimeMode::Dag;
  }
  void run_once_dag();
  void dag_encode(runtime::TaskGraph& g);
  void dag_iteration(runtime::TaskGraph& g, int j);
  void dag_sweep(runtime::TaskGraph& g);
  void dag_col_verify(runtime::TaskGraph& g, int bi, int bk, fault::Op attr,
                      int iter);
  void dag_row_verify(runtime::TaskGraph& g, int bi, int bk, fault::Op attr,
                      int iter);
  void dag_hook(runtime::TaskGraph& g, const char* name, int iter,
                std::function<void()> fn);
  [[nodiscard]] std::vector<StreamId> dag_streams() const;

  /// Tile namespaces for dependency inference: data blocks, the two
  /// checksum flavors, the host panel staging area, and scratch slots.
  enum TileSpace : int {
    kTileData = 0,
    kTileCchk,
    kTileRchk,
    kTileHost,
    kTileScratch
  };
  [[nodiscard]] static runtime::TileKey dtile(int i, int k) {
    return {kTileData, i, k};
  }
  [[nodiscard]] static runtime::TileKey cctile(int i, int k) {
    return {kTileCchk, i, k};
  }
  [[nodiscard]] static runtime::TileKey rctile(int i, int k) {
    return {kTileRchk, i, k};
  }
  [[nodiscard]] static runtime::TileKey htile() { return {kTileHost, 0, 0}; }
  [[nodiscard]] static runtime::TileKey stile(int slot) {
    return {kTileScratch, slot, 0};
  }
  std::int64_t dag_slot_ = 0;  ///< round-robin scratch-slot cursor

  Machine& m_;
  Matrix<double>* a_;
  int n_;
  LuOptions opt_;
  fault::Injector* injector_;
  Telemetry tel_;
  int cur_iter_ = -1;  ///< telemetry iteration; -1 outside the j-loop

  int b_ = 0;
  int nb_ = 0;
  bool ft_ = false;

  DeviceBuffer d_a_;
  DeviceBuffer d_cchk_;   // column checksums, 2nb x n
  DeviceBuffer d_rchk_;   // row checksums, n x 2nb
  DeviceBuffer d_scratch_;
  std::int64_t scratch_capacity_ = 0;  // doubles

  Matrix<double> pristine_;
  Matrix<double> h_panel_;       // host panel (n x b)
  Matrix<double> h_panel_chk_;   // re-encoded column checksums (2nb x b)

  StreamId s_compute_ = 0;
  StreamId s_chk_ = 0;
  std::vector<StreamId> s_recalc_;

  CholeskyResult result_;
};

CholeskyResult LuRun::execute() {
  allocate();
  upload();
  m_.sync_all();
  const double t0 = m_.host_now();

  bool done = false;
  while (!done) {
    try {
      run_once();
      done = true;
      result_.success = true;
    } catch (const Error& e) {
      result_.fail_stop_observed |=
          dynamic_cast<const NotPositiveDefiniteError*>(&e) != nullptr;
      if (!ft_ || result_.reruns >= opt_.max_reruns) {
        result_.note = e.what();
        done = true;
      } else {
        ++result_.reruns;
        tel_.rerun(result_.reruns, e.what());
        const obs::PhaseScope recover(tel_.profile(), obs::Phase::Recover);
        upload();
      }
    }
  }

  m_.sync_all();
  result_.seconds = m_.host_now() - t0;
  // LU costs 2n^3/3 flops.
  const double flops = 2.0 * n_ * static_cast<double>(n_) * n_ / 3.0;
  result_.gflops =
      result_.seconds > 0.0 ? flops / result_.seconds / 1e9 : 0.0;

  if (result_.success && m_.numeric()) {
    m_.memcpy_d2h(a_->data(), d_a_, 0, static_cast<std::int64_t>(n_) * n_,
                  s_compute_, /*blocking=*/true);
  }
  return result_;
}

void LuRun::allocate() {
  d_a_ = m_.alloc(static_cast<std::int64_t>(n_) * n_);
  if (ft_) {
    d_cchk_ = m_.alloc(static_cast<std::int64_t>(2 * nb_) * n_);
    d_rchk_ = m_.alloc(static_cast<std::int64_t>(n_) * 2 * nb_);
    scratch_capacity_ =
        2LL * (static_cast<std::int64_t>(nb_) * nb_ + 2 * nb_) *
        std::max(b_, kChecksumRows);
    d_scratch_ = m_.alloc(scratch_capacity_);
    h_panel_chk_ = Matrix<double>(2 * nb_, b_);
  }
  h_panel_ = Matrix<double>(n_, b_);
  if (m_.numeric()) pristine_ = *a_;

  s_compute_ = m_.default_stream();
  if (ft_) {
    s_chk_ = m_.create_stream();
    int streams = opt_.recalc_streams > 0
                      ? opt_.recalc_streams
                      : m_.profile().max_concurrent_kernels;
    if (!opt_.concurrent_recalc) streams = 1;
    for (int i = 0; i < streams; ++i) s_recalc_.push_back(m_.create_stream());
  }
}

void LuRun::upload() {
  m_.memcpy_h2d(d_a_, 0, m_.numeric() ? pristine_.data() : nullptr,
                static_cast<std::int64_t>(n_) * n_, s_compute_,
                /*blocking=*/true);
}

void LuRun::encode() {
  if (!ft_) return;
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Encode);
  const EventId e_up = m_.record_event(s_compute_);
  for (StreamId s : s_recalc_) m_.stream_wait_event(s, e_up);
  int q = 0;
  for (int k = 0; k < nb_; ++k) {
    for (int i = 0; i < nb_; ++i) {
      const StreamId s = s_recalc_[q++ % s_recalc_.size()];
      const DMat blk = data_block(i, k);
      {
        const DMat chk = cchk_block(i, k);
        KernelDesc d{"encode_c", KernelClass::Blas2,
                     blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
        m_.launch(s, d, [blk, chk] {
          encode_block(ConstMatrixView<double>(blk.view()), chk.view());
        });
      }
      {
        const DMat chk = rchk_block(i, k);
        KernelDesc d{"encode_r", KernelClass::Blas2,
                     blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
        m_.launch(s, d, [blk, chk] {
          encode_block_rows(ConstMatrixView<double>(blk.view()), chk.view());
        });
      }
    }
  }
  for (StreamId s : s_recalc_) {
    const EventId e = m_.record_event(s);
    m_.stream_wait_event(s_compute_, e);
    m_.stream_wait_event(s_chk_, e);
  }
}

void LuRun::run_once() {
  if (use_dag()) {
    run_once_dag();
    return;
  }
  encode();
  // Stochastic transfer faults cover the H2D return trips of the host
  // factored panel and its checksums; every landed corruption stays
  // inconsistent with the separately shipped checksums, so the K-gated
  // trailing verifications or the final sweep catch it. The D2H panel
  // staging copy has no arrival check yet and stays out of the armed
  // surface (see docs/fault-model.md, residual exposures).
  sim::TransferArmGuard arm(m_, /*h2d=*/true, /*d2h=*/false);
  for (int j = 0; j < nb_; ++j) iterate(j);
  if (ft_) final_sweep();
  m_.sync_all();
}

void LuRun::absorb(const VerifyOutcome& out) {
  result_.errors_detected += out.errors_detected;
  result_.errors_corrected += out.errors_corrected;
  result_.checksum_repairs += out.checksum_repairs;
  if (out.uncorrectable) {
    throw UnrecoverableCorruptionError(
        "more than one error per checksum lane");
  }
}

void LuRun::verify_col_blocks(const std::vector<BlockId>& blocks,
                              fault::Op attr) {
  if (!ft_ || blocks.empty()) return;
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Verify);
  switch (attr) {
    case fault::Op::Potf2: result_.verified.potf2_blocks += blocks.size(); break;
    case fault::Op::Trsm: result_.verified.trsm_blocks += blocks.size(); break;
    case fault::Op::Syrk: result_.verified.syrk_blocks += blocks.size(); break;
    case fault::Op::Gemm: result_.verified.gemm_blocks += blocks.size(); break;
  }
  tel_.verify_scheduled(attr, blocks.size());
  const EventId e_comp = m_.record_event(s_compute_);
  const EventId e_chk = m_.record_event(s_chk_);
  const int nstreams = std::max(
      1, std::min(static_cast<int>(s_recalc_.size()),
                  static_cast<int>(blocks.size())));
  for (int i = 0; i < nstreams; ++i) {
    m_.stream_wait_event(s_recalc_[i], e_comp);
    m_.stream_wait_event(s_recalc_[i], e_chk);
  }
  std::int64_t pos = 0;
  for (std::size_t q = 0; q < blocks.size(); ++q) {
    const auto [bi, bk] = blocks[q];
    issue_col_verify(s_recalc_[q % nstreams], bi, bk, attr, pos, cur_iter_);
    pos += 2LL * bs(bk);
  }
  for (int i = 0; i < nstreams; ++i) {
    const EventId e = m_.record_event(s_recalc_[i]);
    m_.stream_wait_event(s_compute_, e);
    m_.stream_wait_event(s_chk_, e);
  }
}

void LuRun::issue_col_verify(StreamId s, int bi, int bk, fault::Op attr,
                             std::int64_t pos, int iter) {
  const DMat blk = data_block(bi, bk);
  FTLA_CHECK(pos + 2LL * blk.cols <= scratch_capacity_);
  const DMat scratch{&d_scratch_, pos, kChecksumRows, blk.cols, 2};
  KernelDesc rd{"recalc_c", KernelClass::Blas2,
                blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
  m_.launch(s, rd, [blk, scratch] {
    encode_block(ConstMatrixView<double>(blk.view()), scratch.view());
  });
  const DMat chk = cchk_block(bi, bk);
  const DMat rchk = rchk_block(bi, bk);
  const Tolerance tol = opt_.tolerance;
  KernelDesc cd{"verify_c", KernelClass::Compare, 4LL * blk.cols, 0};
  const std::int64_t rflops = rd.flops;
  m_.launch(s, cd, [this, blk, chk, rchk, tol, scratch, attr, bi, bk, rflops,
                    iter] {
    auto out = verify_block(blk.view(), chk.view(),
                            ConstMatrixView<double>(scratch.view()), tol);
    // Blocks carry both checksum flavors; after a correction through
    // the column side, re-derive the row checksums from the repaired
    // data so the two sides stay coherent (corrections are rare, so
    // the O(B^2) re-encode is negligible).
    if (!out.corrections.empty()) {
      encode_block_rows(ConstMatrixView<double>(blk.view()), rchk.view());
    }
    tel_.block_verified(out, attr, iter, bi, bk, rflops, off(bi), blk.rows,
                        off(bk), blk.cols);
    absorb(out);
  });
}

void LuRun::verify_row_blocks(const std::vector<BlockId>& blocks,
                              fault::Op attr) {
  if (!ft_ || blocks.empty()) return;
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Verify);
  switch (attr) {
    case fault::Op::Potf2: result_.verified.potf2_blocks += blocks.size(); break;
    case fault::Op::Trsm: result_.verified.trsm_blocks += blocks.size(); break;
    case fault::Op::Syrk: result_.verified.syrk_blocks += blocks.size(); break;
    case fault::Op::Gemm: result_.verified.gemm_blocks += blocks.size(); break;
  }
  tel_.verify_scheduled(attr, blocks.size());
  const EventId e_comp = m_.record_event(s_compute_);
  const EventId e_chk = m_.record_event(s_chk_);
  const int nstreams = std::max(
      1, std::min(static_cast<int>(s_recalc_.size()),
                  static_cast<int>(blocks.size())));
  for (int i = 0; i < nstreams; ++i) {
    m_.stream_wait_event(s_recalc_[i], e_comp);
    m_.stream_wait_event(s_recalc_[i], e_chk);
  }
  std::int64_t pos = 0;
  for (std::size_t q = 0; q < blocks.size(); ++q) {
    const auto [bi, bk] = blocks[q];
    issue_row_verify(s_recalc_[q % nstreams], bi, bk, attr, pos, cur_iter_);
    pos += 2LL * bs(bi);
  }
  for (int i = 0; i < nstreams; ++i) {
    const EventId e = m_.record_event(s_recalc_[i]);
    m_.stream_wait_event(s_compute_, e);
    m_.stream_wait_event(s_chk_, e);
  }
}

void LuRun::issue_row_verify(StreamId s, int bi, int bk, fault::Op attr,
                             std::int64_t pos, int iter) {
  const DMat blk = data_block(bi, bk);
  FTLA_CHECK(pos + 2LL * blk.rows <= scratch_capacity_);
  const DMat scratch{&d_scratch_, pos, blk.rows, kChecksumRows, blk.rows};
  KernelDesc rd{"recalc_r", KernelClass::Blas2,
                blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
  m_.launch(s, rd, [blk, scratch] {
    encode_block_rows(ConstMatrixView<double>(blk.view()), scratch.view());
  });
  const DMat chk = rchk_block(bi, bk);
  const DMat cchk = cchk_block(bi, bk);
  const Tolerance tol = opt_.tolerance;
  KernelDesc cd{"verify_r", KernelClass::Compare, 4LL * blk.rows, 0};
  const std::int64_t rflops = rd.flops;
  m_.launch(s, cd, [this, blk, chk, cchk, tol, scratch, attr, bi, bk, rflops,
                    iter] {
    auto out = verify_block_rows(blk.view(), chk.view(),
                                 ConstMatrixView<double>(scratch.view()),
                                 tol);
    // Mirror of the column path: re-derive the column checksums from
    // the repaired data.
    if (!out.corrections.empty()) {
      encode_block(ConstMatrixView<double>(blk.view()), cchk.view());
    }
    tel_.block_verified(out, attr, iter, bi, bk, rflops, off(bi), blk.rows,
                        off(bk), blk.cols);
    absorb(out);
  });
}

void LuRun::hook_storage(fault::Op op, int j) {
  if (injector_ == nullptr) return;
  for (const auto& spec :
       injector_->take(fault::FaultType::Storage, op, j)) {
    if (!m_.numeric()) continue;
    int bi = spec.block_row;
    int bk = spec.block_col;
    // Defaults per LU context: the panel (Potf2), the U row (Trsm) or a
    // trailing block (Gemm) that the op is about to read.
    if (bi < 0) bi = op == fault::Op::Trsm ? j : std::min(j + 1, nb_ - 1);
    if (bk < 0) bk = op == fault::Op::Potf2 ? j : std::min(j + 1, nb_ - 1);
    FTLA_CHECK(bi >= 0 && bi < nb_ && bk >= 0 && bk < nb_);
    const int grow = off(bi) + std::min(spec.elem_row, bs(bi) - 1);
    const int gcol = off(bk) + std::min(spec.elem_col, bs(bk) - 1);
    double* p = d_a_.data() + static_cast<std::int64_t>(gcol) * n_ + grow;
    const double old_value = *p;
    for (int bit : spec.bits) *p = flip_bit(*p, bit);
    injector_->record(spec, old_value, *p, grow, gcol);
  }
}

void LuRun::hook_computing(fault::Op op, int j) {
  if (injector_ == nullptr) return;
  for (const auto& spec :
       injector_->take(fault::FaultType::Computing, op, j)) {
    if (!m_.numeric()) continue;
    int bi = spec.block_row;
    int bk = spec.block_col;
    if (bi < 0) bi = op == fault::Op::Trsm ? j : std::min(j + 1, nb_ - 1);
    if (bk < 0) bk = op == fault::Op::Potf2 ? j : std::min(j + 1, nb_ - 1);
    FTLA_CHECK(bi >= 0 && bi < nb_ && bk >= 0 && bk < nb_);
    const int grow = off(bi) + std::min(spec.elem_row, bs(bi) - 1);
    const int gcol = off(bk) + std::min(spec.elem_col, bs(bk) - 1);
    double* p = d_a_.data() + static_cast<std::int64_t>(gcol) * n_ + grow;
    const double old_value = *p;
    *p = old_value + spec.magnitude * std::max(1.0, std::abs(old_value));
    injector_->record(spec, old_value, *p, grow, gcol);
  }
}

void LuRun::iterate(int j) {
  cur_iter_ = j;
  tel_.begin_iteration(j);
  const int jb = bs(j);
  const int below = n_ - off(j);           // panel height (incl. diagonal)
  const int right = n_ - off(j) - jb;      // trailing width
  const bool verify_this_iter = (j % opt_.verify_interval) == 0;

  // ---------------- panel: fetch, factor on host, re-encode ----------
  hook_storage(fault::Op::Potf2, j);
  if (ft_) {
    // Panel inputs are always verified: a corrupted pivot path is the
    // LU analog of the unrecoverable SYRK input (paper Opt 3 logic).
    std::vector<BlockId> in;
    for (int i = j; i < nb_; ++i) in.emplace_back(i, j);
    verify_col_blocks(in, fault::Op::Potf2);
  }
  m_.memcpy_d2h_2d(m_.numeric() ? h_panel_.data() : nullptr, n_, d_a_,
                   static_cast<std::int64_t>(off(j)) * n_ + off(j), n_,
                   below, jb, s_compute_, /*blocking=*/true);
  {
    KernelDesc d{"getf2", KernelClass::HostPotf2,
                 // ~ m*b^2 flops for the panel factorization
                 static_cast<std::int64_t>(below) * jb * jb, 0};
    m_.host_compute(d, [this, below, jb] {
      blas::getf2_nopiv(h_panel_.block(0, 0, below, jb));
    });
  }
  if (ft_) {
    KernelDesc d{"encode_panel", KernelClass::HostChecksum,
                 4LL * below * jb, 0};
    m_.host_compute(d, [this, j, below, jb] {
      // Column checksums of each finished panel block, derived on the
      // (reliable) host before the factors return to device memory.
      for (int i = j; i < nb_; ++i) {
        encode_block(ConstMatrixView<double>(
                         h_panel_.block(off(i) - off(j), 0, bs(i), jb)),
                     h_panel_chk_.block(2 * i, 0, kChecksumRows, jb));
      }
    });
  }
  m_.memcpy_h2d_2d(d_a_, static_cast<std::int64_t>(off(j)) * n_ + off(j), n_,
                   m_.numeric() ? h_panel_.data() : nullptr, n_, below, jb,
                   s_compute_);
  // Applied after the transfer so the corrupted value actually lands in
  // device memory.
  hook_computing(fault::Op::Potf2, j);
  if (ft_) {
    // The re-encoded panel checksums ride back only because FT is on.
    const obs::PhaseScope chk_phase(tel_.profile(), obs::Phase::Update);
    m_.memcpy_h2d_2d(d_cchk_,
                     static_cast<std::int64_t>(off(j)) * (2 * nb_) + 2 * j,
                     2 * nb_, m_.numeric() ? &h_panel_chk_(2 * j, 0) : nullptr,
                     h_panel_chk_.ld(), 2 * (nb_ - j), jb, s_compute_);
  }
  const EventId e_panel = m_.record_event(s_compute_);

  if (right <= 0) return;

  // ---------------- TRSM: U row solve ---------------------------------
  hook_storage(fault::Op::Trsm, j);
  if (ft_) {
    // The diagonal block is always verified before its solve; the
    // targets follow the K interval.
    std::vector<BlockId> in;
    in.emplace_back(j, j);
    if (verify_this_iter) {
      for (int k = j + 1; k < nb_; ++k) in.emplace_back(j, k);
    } else {
      tel_.verify_skipped(fault::Op::Trsm,
                          static_cast<std::size_t>(nb_ - j - 1), j);
    }
    verify_col_blocks(in, fault::Op::Trsm);
  }
  sim::gpublas::trsm(m_, s_compute_, Side::Left, Uplo::Lower, Trans::No,
                     Diag::Unit, 1.0, data_block(j, j),
                     data_region(off(j), off(j) + jb, jb, right));
  hook_computing(fault::Op::Trsm, j);
  // rchk(U') = L^{-1} rchk(A) on the checksum stream.
  if (ft_) {
    // Neutral gpublas name ("trsm"): the scope tags it Update.
    const obs::PhaseScope chk_phase(tel_.profile(), obs::Phase::Update);
    m_.stream_wait_event(s_chk_, e_panel);
    sim::gpublas::trsm(m_, s_chk_, Side::Left, Uplo::Lower, Trans::No,
                       Diag::Unit, 1.0, data_block(j, j),
                       rchk_strip(off(j), jb, j + 1, nb_),
                       KernelClass::Blas3Skinny);
  }

  // ---------------- GEMM: trailing update -----------------------------
  hook_storage(fault::Op::Gemm, j);
  if (ft_) {
    // The GEMM multipliers — the L panel and the U row — multiply the
    // data update and the checksum update *identically*, so corruption
    // in either propagates checksum-consistently into the trailing
    // matrix and can never be detected afterwards. They are verified
    // every iteration, the LU analog of Cholesky's always-verified
    // SYRK inputs. Only the update targets tolerate the K interval
    // (Opt 3): a struck target stays inconsistent with its stored
    // checksums and is caught by a later verification or the sweep.
    std::vector<BlockId> col_in;
    for (int i = j + 1; i < nb_; ++i) col_in.emplace_back(i, j);  // L panel
    if (verify_this_iter) {
      for (int i = j + 1; i < nb_; ++i)
        for (int k = j + 1; k < nb_; ++k) col_in.emplace_back(i, k);
    } else {
      // Opt 3: trailing-target verification skipped this iteration.
      const std::size_t t = static_cast<std::size_t>(nb_ - j - 1);
      tel_.verify_skipped(fault::Op::Gemm, t * t, j);
    }
    verify_col_blocks(col_in, fault::Op::Gemm);
    std::vector<BlockId> row_in;
    for (int k = j + 1; k < nb_; ++k) row_in.emplace_back(j, k);  // U row
    verify_row_blocks(row_in, fault::Op::Gemm);
  }
  sim::gpublas::gemm(m_, s_compute_, Trans::No, Trans::No, -1.0,
                     data_region(off(j) + jb, off(j), right, jb),
                     data_region(off(j), off(j) + jb, jb, right), 1.0,
                     data_region(off(j) + jb, off(j) + jb, right, right));
  hook_computing(fault::Op::Gemm, j);
  if (ft_) {
    const obs::PhaseScope chk_phase(tel_.profile(), obs::Phase::Update);
    // cchk(B') = cchk(B) - cchk(L) U_row  (2(nb-j-1) x right GEMM)
    sim::gpublas::gemm(m_, s_chk_, Trans::No, Trans::No, -1.0,
                       cchk_strip(j + 1, nb_, off(j), jb),
                       data_region(off(j), off(j) + jb, jb, right), 1.0,
                       cchk_strip(j + 1, nb_, off(j) + jb, right),
                       KernelClass::Blas3Skinny);
    // rchk(B') = rchk(B) - L rchk(U_row)  (right x 2(nb-j-1) GEMM)
    sim::gpublas::gemm(m_, s_chk_, Trans::No, Trans::No, -1.0,
                       data_region(off(j) + jb, off(j), right, jb),
                       rchk_strip(off(j), jb, j + 1, nb_), 1.0,
                       rchk_strip(off(j) + jb, right, j + 1, nb_),
                       KernelClass::Blas3Skinny);
  }
}

void LuRun::final_sweep() {
  cur_iter_ = -1;  // telemetry: the sweep belongs to no outer iteration
  tel_.begin_iteration(-1);
  // Right-looking LU never re-reads finished blocks, so storage errors
  // striking them after their last use can only be caught here: one
  // verification pass over the whole factor (column checksums for the
  // L region and the diagonal, row checksums for the U region).
  std::vector<BlockId> l_blocks;
  std::vector<BlockId> u_blocks;
  for (int k = 0; k < nb_; ++k) {
    for (int i = 0; i < nb_; ++i) {
      if (i >= k) {
        l_blocks.emplace_back(i, k);
      } else {
        u_blocks.emplace_back(i, k);
      }
    }
  }
  verify_col_blocks(l_blocks, fault::Op::Potf2);
  verify_row_blocks(u_blocks, fault::Op::Trsm);
}

// ----------------------------------------------------------------------
// Task-graph (DAG) runtime path (docs/runtime.md)
//
// Same construction as the Cholesky driver: the graph is built in the
// exact order the bulk path issues its machine operations, so the
// executor's deterministic (priority, insertion) schedule replays bulk
// program order and the numerics (and fault-hook firing points) are
// bit-identical by design. Only virtual time changes: verify tasks
// depend on their block's writers instead of fencing every stream, and
// the final sweep over retired factor blocks overlaps the tail of the
// factorization instead of running after it.
// ----------------------------------------------------------------------

std::vector<StreamId> LuRun::dag_streams() const {
  std::vector<StreamId> streams{s_compute_};
  if (ft_) {
    streams.push_back(s_chk_);
    streams.insert(streams.end(), s_recalc_.begin(), s_recalc_.end());
  }
  return streams;
}

void LuRun::dag_hook(runtime::TaskGraph& g, const char* name, int iter,
                     std::function<void()> fn) {
  // Fault hooks consume injector state at a fixed program point; an
  // empty footprint keeps them out of the dependency structure while
  // insertion order fixes *when* they fire.
  if (injector_ == nullptr) return;
  runtime::TaskOptions opts;
  opts.phase = obs::Phase::Base;
  opts.iteration = iter;
  opts.where = runtime::Where::Inline;
  g.add_task(name, {},
             [fn = std::move(fn)](const runtime::TaskContext&) { fn(); },
             opts);
}

void LuRun::dag_col_verify(runtime::TaskGraph& g, int bi, int bk,
                           fault::Op attr, int iter) {
  if (!ft_) return;
  switch (attr) {
    case fault::Op::Potf2: result_.verified.potf2_blocks += 1; break;
    case fault::Op::Trsm: result_.verified.trsm_blocks += 1; break;
    case fault::Op::Syrk: result_.verified.syrk_blocks += 1; break;
    case fault::Op::Gemm: result_.verified.gemm_blocks += 1; break;
  }
  tel_.verify_scheduled(attr, 1);
  const std::int64_t nslots = scratch_capacity_ / (2 * b_);
  const int slot = static_cast<int>(dag_slot_++ % nslots);
  const std::int64_t pos = static_cast<std::int64_t>(slot) * 2 * b_;
  runtime::TaskOptions opts;
  opts.phase = obs::Phase::Verify;
  opts.iteration = iter;
  // Corrections through the column side re-derive the row checksums,
  // so both checksum tiles are read-write.
  g.add_task(
      "verify_c",
      {runtime::rw(dtile(bi, bk)), runtime::rw(cctile(bi, bk)),
       runtime::rw(rctile(bi, bk)), runtime::write(stile(slot))},
      [this, bi, bk, attr, pos, slot, iter](const runtime::TaskContext& c) {
        c.tiles.rw(dtile(bi, bk));
        c.tiles.rw(cctile(bi, bk));
        c.tiles.rw(rctile(bi, bk));
        c.tiles.write(stile(slot));
        issue_col_verify(c.stream, bi, bk, attr, pos, iter);
      },
      opts);
}

void LuRun::dag_row_verify(runtime::TaskGraph& g, int bi, int bk,
                           fault::Op attr, int iter) {
  if (!ft_) return;
  switch (attr) {
    case fault::Op::Potf2: result_.verified.potf2_blocks += 1; break;
    case fault::Op::Trsm: result_.verified.trsm_blocks += 1; break;
    case fault::Op::Syrk: result_.verified.syrk_blocks += 1; break;
    case fault::Op::Gemm: result_.verified.gemm_blocks += 1; break;
  }
  tel_.verify_scheduled(attr, 1);
  const std::int64_t nslots = scratch_capacity_ / (2 * b_);
  const int slot = static_cast<int>(dag_slot_++ % nslots);
  const std::int64_t pos = static_cast<std::int64_t>(slot) * 2 * b_;
  runtime::TaskOptions opts;
  opts.phase = obs::Phase::Verify;
  opts.iteration = iter;
  g.add_task(
      "verify_r",
      {runtime::rw(dtile(bi, bk)), runtime::rw(cctile(bi, bk)),
       runtime::rw(rctile(bi, bk)), runtime::write(stile(slot))},
      [this, bi, bk, attr, pos, slot, iter](const runtime::TaskContext& c) {
        c.tiles.rw(dtile(bi, bk));
        c.tiles.rw(cctile(bi, bk));
        c.tiles.rw(rctile(bi, bk));
        c.tiles.write(stile(slot));
        issue_row_verify(c.stream, bi, bk, attr, pos, iter);
      },
      opts);
}

void LuRun::dag_encode(runtime::TaskGraph& g) {
  runtime::TaskOptions opts;
  opts.phase = obs::Phase::Encode;
  for (int k = 0; k < nb_; ++k) {
    for (int i = 0; i < nb_; ++i) {
      const DMat blk = data_block(i, k);
      const DMat cchk = cchk_block(i, k);
      const DMat rchk = rchk_block(i, k);
      g.add_task("encode",
                 {runtime::read(dtile(i, k)), runtime::write(cctile(i, k)),
                  runtime::write(rctile(i, k))},
                 [this, blk, cchk, rchk, i, k](const runtime::TaskContext& c) {
                   c.tiles.read(dtile(i, k));
                   c.tiles.write(cctile(i, k));
                   c.tiles.write(rctile(i, k));
                   KernelDesc dc{"encode_c", KernelClass::Blas2,
                                 blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
                   m_.launch(c.stream, dc, [blk, cchk] {
                     encode_block(ConstMatrixView<double>(blk.view()),
                                  cchk.view());
                   });
                   KernelDesc dr{"encode_r", KernelClass::Blas2,
                                 blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
                   m_.launch(c.stream, dr, [blk, rchk] {
                     encode_block_rows(ConstMatrixView<double>(blk.view()),
                                       rchk.view());
                   });
                 },
                 opts);
    }
  }
}

void LuRun::dag_iteration(runtime::TaskGraph& g, int j) {
  const int jb = bs(j);
  const int below = n_ - off(j);       // panel height (incl. diagonal)
  const int right = n_ - off(j) - jb;  // trailing width
  const bool verify_this_iter = (j % opt_.verify_interval) == 0;

  runtime::TaskOptions base;
  base.phase = obs::Phase::Base;
  base.iteration = j;
  runtime::TaskOptions update = base;
  update.phase = obs::Phase::Update;
  runtime::TaskOptions host = base;
  host.phase = obs::Phase::Base;
  host.where = runtime::Where::Host;

  // ---------------- panel: fetch, factor on host, re-encode ----------
  dag_hook(g, "hook_storage_potf2", j,
           [this, j] { hook_storage(fault::Op::Potf2, j); });
  if (ft_) {
    // Panel inputs are always verified (see the bulk path).
    for (int i = j; i < nb_; ++i)
      dag_col_verify(g, i, j, fault::Op::Potf2, j);
  }
  {
    std::vector<runtime::Footprint> fp;
    for (int i = j; i < nb_; ++i) fp.push_back(runtime::read(dtile(i, j)));
    fp.push_back(runtime::write(htile()));
    g.add_task("d2h_panel", std::move(fp),
               [this, j, jb, below](const runtime::TaskContext& c) {
                 for (int i = j; i < nb_; ++i) c.tiles.read(dtile(i, j));
                 c.tiles.write(htile());
                 m_.memcpy_d2h_2d(
                     m_.numeric() ? h_panel_.data() : nullptr, n_, d_a_,
                     static_cast<std::int64_t>(off(j)) * n_ + off(j), n_,
                     below, jb, c.stream);
               },
               base);
  }
  g.add_task("getf2", {runtime::rw(htile())},
             [this, below, jb](const runtime::TaskContext& c) {
               c.tiles.rw(htile());
               KernelDesc d{"getf2", KernelClass::HostPotf2,
                            static_cast<std::int64_t>(below) * jb * jb, 0};
               m_.host_compute(d, [this, below, jb] {
                 blas::getf2_nopiv(h_panel_.block(0, 0, below, jb));
               });
             },
             host);
  if (ft_) {
    g.add_task("encode_panel", {runtime::rw(htile())},
               [this, j, below, jb](const runtime::TaskContext& c) {
                 c.tiles.rw(htile());
                 KernelDesc d{"encode_panel", KernelClass::HostChecksum,
                              4LL * below * jb, 0};
                 m_.host_compute(d, [this, j, jb] {
                   for (int i = j; i < nb_; ++i) {
                     encode_block(
                         ConstMatrixView<double>(
                             h_panel_.block(off(i) - off(j), 0, bs(i), jb)),
                         h_panel_chk_.block(2 * i, 0, kChecksumRows, jb));
                   }
                 });
               },
               host);
  }
  {
    std::vector<runtime::Footprint> fp{runtime::read(htile())};
    for (int i = j; i < nb_; ++i) fp.push_back(runtime::write(dtile(i, j)));
    g.add_task("h2d_panel", std::move(fp),
               [this, j, jb, below](const runtime::TaskContext& c) {
                 c.tiles.read(htile());
                 for (int i = j; i < nb_; ++i) c.tiles.write(dtile(i, j));
                 m_.memcpy_h2d_2d(
                     d_a_, static_cast<std::int64_t>(off(j)) * n_ + off(j),
                     n_, m_.numeric() ? h_panel_.data() : nullptr, n_, below,
                     jb, c.stream);
               },
               base);
  }
  dag_hook(g, "hook_computing_potf2", j,
           [this, j] { hook_computing(fault::Op::Potf2, j); });
  if (ft_) {
    std::vector<runtime::Footprint> fp{runtime::read(htile())};
    for (int i = j; i < nb_; ++i) fp.push_back(runtime::write(cctile(i, j)));
    g.add_task("h2d_panel_chk", std::move(fp),
               [this, j, jb](const runtime::TaskContext& c) {
                 c.tiles.read(htile());
                 for (int i = j; i < nb_; ++i) c.tiles.write(cctile(i, j));
                 m_.memcpy_h2d_2d(
                     d_cchk_,
                     static_cast<std::int64_t>(off(j)) * (2 * nb_) + 2 * j,
                     2 * nb_,
                     m_.numeric() ? &h_panel_chk_(2 * j, 0) : nullptr,
                     h_panel_chk_.ld(), 2 * (nb_ - j), jb, c.stream);
               },
               update);
  }

  if (right <= 0) return;

  // ---------------- TRSM: U row solve ---------------------------------
  dag_hook(g, "hook_storage_trsm", j,
           [this, j] { hook_storage(fault::Op::Trsm, j); });
  if (ft_) {
    dag_col_verify(g, j, j, fault::Op::Trsm, j);
    if (verify_this_iter) {
      for (int k = j + 1; k < nb_; ++k)
        dag_col_verify(g, j, k, fault::Op::Trsm, j);
    } else {
      tel_.verify_skipped(fault::Op::Trsm,
                          static_cast<std::size_t>(nb_ - j - 1), j);
    }
  }
  {
    std::vector<runtime::Footprint> fp{runtime::read(dtile(j, j))};
    for (int k = j + 1; k < nb_; ++k) fp.push_back(runtime::rw(dtile(j, k)));
    g.add_task("trsm", std::move(fp),
               [this, j, jb, right](const runtime::TaskContext& c) {
                 c.tiles.read(dtile(j, j));
                 for (int k = j + 1; k < nb_; ++k) c.tiles.rw(dtile(j, k));
                 sim::gpublas::trsm(
                     m_, c.stream, Side::Left, Uplo::Lower, Trans::No,
                     Diag::Unit, 1.0, data_block(j, j),
                     data_region(off(j), off(j) + jb, jb, right));
               },
               base);
  }
  dag_hook(g, "hook_computing_trsm", j,
           [this, j] { hook_computing(fault::Op::Trsm, j); });
  if (ft_) {
    // rchk(U') = L^{-1} rchk(A).
    std::vector<runtime::Footprint> fp{runtime::read(dtile(j, j))};
    for (int k = j + 1; k < nb_; ++k)
      fp.push_back(runtime::rw(rctile(j, k)));
    g.add_task("chk_trsm", std::move(fp),
               [this, j, jb](const runtime::TaskContext& c) {
                 c.tiles.read(dtile(j, j));
                 for (int k = j + 1; k < nb_; ++k) c.tiles.rw(rctile(j, k));
                 sim::gpublas::trsm(m_, c.stream, Side::Left, Uplo::Lower,
                                    Trans::No, Diag::Unit, 1.0,
                                    data_block(j, j),
                                    rchk_strip(off(j), jb, j + 1, nb_),
                                    KernelClass::Blas3Skinny);
               },
               update);
  }

  // ---------------- GEMM: trailing update -----------------------------
  dag_hook(g, "hook_storage_gemm", j,
           [this, j] { hook_storage(fault::Op::Gemm, j); });
  if (ft_) {
    // Multipliers (L panel, U row) are always verified; the trailing
    // targets obey the K interval — see the bulk path's rationale.
    if (!verify_this_iter) {
      const std::size_t t = static_cast<std::size_t>(nb_ - j - 1);
      tel_.verify_skipped(fault::Op::Gemm, t * t, j);
    }
    for (int i = j + 1; i < nb_; ++i)
      dag_col_verify(g, i, j, fault::Op::Gemm, j);  // L panel
    if (verify_this_iter) {
      for (int i = j + 1; i < nb_; ++i)
        for (int k = j + 1; k < nb_; ++k)
          dag_col_verify(g, i, k, fault::Op::Gemm, j);
    }
    for (int k = j + 1; k < nb_; ++k)
      dag_row_verify(g, j, k, fault::Op::Gemm, j);  // U row
  }
  {
    std::vector<runtime::Footprint> fp;
    for (int i = j + 1; i < nb_; ++i)
      fp.push_back(runtime::read(dtile(i, j)));
    for (int k = j + 1; k < nb_; ++k)
      fp.push_back(runtime::read(dtile(j, k)));
    for (int i = j + 1; i < nb_; ++i)
      for (int k = j + 1; k < nb_; ++k)
        fp.push_back(runtime::rw(dtile(i, k)));
    g.add_task("gemm", std::move(fp),
               [this, j, jb, right](const runtime::TaskContext& c) {
                 for (int i = j + 1; i < nb_; ++i) c.tiles.read(dtile(i, j));
                 for (int k = j + 1; k < nb_; ++k) c.tiles.read(dtile(j, k));
                 for (int i = j + 1; i < nb_; ++i)
                   for (int k = j + 1; k < nb_; ++k) c.tiles.rw(dtile(i, k));
                 sim::gpublas::gemm(
                     m_, c.stream, Trans::No, Trans::No, -1.0,
                     data_region(off(j) + jb, off(j), right, jb),
                     data_region(off(j), off(j) + jb, jb, right), 1.0,
                     data_region(off(j) + jb, off(j) + jb, right, right));
               },
               base);
  }
  dag_hook(g, "hook_computing_gemm", j,
           [this, j] { hook_computing(fault::Op::Gemm, j); });
  if (ft_) {
    {
      // cchk(B') = cchk(B) - cchk(L) U_row
      std::vector<runtime::Footprint> fp;
      for (int i = j + 1; i < nb_; ++i)
        fp.push_back(runtime::read(cctile(i, j)));
      for (int k = j + 1; k < nb_; ++k)
        fp.push_back(runtime::read(dtile(j, k)));
      for (int i = j + 1; i < nb_; ++i)
        for (int k = j + 1; k < nb_; ++k)
          fp.push_back(runtime::rw(cctile(i, k)));
      g.add_task("chk_gemm_c", std::move(fp),
                 [this, j, jb, right](const runtime::TaskContext& c) {
                   for (int i = j + 1; i < nb_; ++i)
                     c.tiles.read(cctile(i, j));
                   for (int k = j + 1; k < nb_; ++k)
                     c.tiles.read(dtile(j, k));
                   for (int i = j + 1; i < nb_; ++i)
                     for (int k = j + 1; k < nb_; ++k)
                       c.tiles.rw(cctile(i, k));
                   sim::gpublas::gemm(
                       m_, c.stream, Trans::No, Trans::No, -1.0,
                       cchk_strip(j + 1, nb_, off(j), jb),
                       data_region(off(j), off(j) + jb, jb, right), 1.0,
                       cchk_strip(j + 1, nb_, off(j) + jb, right),
                       KernelClass::Blas3Skinny);
                 },
                 update);
    }
    {
      // rchk(B') = rchk(B) - L rchk(U_row)
      std::vector<runtime::Footprint> fp;
      for (int i = j + 1; i < nb_; ++i)
        fp.push_back(runtime::read(dtile(i, j)));
      for (int k = j + 1; k < nb_; ++k)
        fp.push_back(runtime::read(rctile(j, k)));
      for (int i = j + 1; i < nb_; ++i)
        for (int k = j + 1; k < nb_; ++k)
          fp.push_back(runtime::rw(rctile(i, k)));
      g.add_task("chk_gemm_r", std::move(fp),
                 [this, j, jb, right](const runtime::TaskContext& c) {
                   for (int i = j + 1; i < nb_; ++i)
                     c.tiles.read(dtile(i, j));
                   for (int k = j + 1; k < nb_; ++k)
                     c.tiles.read(rctile(j, k));
                   for (int i = j + 1; i < nb_; ++i)
                     for (int k = j + 1; k < nb_; ++k)
                       c.tiles.rw(rctile(i, k));
                   sim::gpublas::gemm(
                       m_, c.stream, Trans::No, Trans::No, -1.0,
                       data_region(off(j) + jb, off(j), right, jb),
                       rchk_strip(off(j), jb, j + 1, nb_), 1.0,
                       rchk_strip(off(j) + jb, right, j + 1, nb_),
                       KernelClass::Blas3Skinny);
                 },
                 update);
    }
  }
}

void LuRun::dag_sweep(runtime::TaskGraph& g) {
  // End sweep over the finished factor (see final_sweep). Each verify
  // depends only on its block's last writer, so retired columns are
  // swept while the factorization tail still runs.
  for (int k = 0; k < nb_; ++k)
    for (int i = k; i < nb_; ++i)
      dag_col_verify(g, i, k, fault::Op::Potf2, -1);
  for (int k = 0; k < nb_; ++k)
    for (int i = 0; i < k; ++i)
      dag_row_verify(g, i, k, fault::Op::Trsm, -1);
}

void LuRun::run_once_dag() {
  dag_slot_ = 0;
  runtime::TaskGraph g;
  if (ft_) dag_encode(g);
  for (int j = 0; j < nb_; ++j) {
    cur_iter_ = j;
    dag_iteration(g, j);
  }
  if (ft_) {
    cur_iter_ = -1;
    dag_sweep(g);
  }
  // Opt-in dynamic footprint sanitizer (docs/static-analysis.md).
  runtime::AccessTracker tracker;
  const bool sanitize = runtime::sanitize_env_enabled();
  if (sanitize) g.set_access_tracker(&tracker);
  // Same transfer-fault arming as the bulk path.
  sim::TransferArmGuard arm(m_, /*h2d=*/true, /*d2h=*/false);
  runtime::StreamRunOptions ropts;
  ropts.streams = dag_streams();
  ropts.profile = tel_.profile();
  ropts.metrics = opt_.metrics;
  ropts.schedule_seed = opt_.dag_schedule_seed;
  runtime::run_on_streams(g, m_, ropts);
  m_.sync_all();
  if (sanitize && !tracker.clean()) {
    throw Error("lu DAG failed footprint sanitizing\n" + tracker.report(g));
  }
}

}  // namespace

CholeskyResult lu(Machine& machine, Matrix<double>* a, int n,
                  const LuOptions& options, fault::Injector* injector) {
  LuRun run(machine, a, n, options, injector);
  return run.execute();
}

}  // namespace ftla::abft
