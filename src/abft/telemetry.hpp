// Telemetry: the one place the three factorization drivers (Cholesky,
// LU, QR) turn their fault-tolerance machinery into structured events
// and metrics.
//
// The recorder is deliberately passive — constructed with whatever the
// caller wired into the options (event sink, metrics registry, both or
// neither) and a no-op when nothing is attached, so the drivers carry
// zero overhead in the common un-instrumented path.
//
// Responsibilities:
//   * mirror the Table-I verification counters into the metrics
//     registry at the *same program points* where the drivers update
//     CholeskyResult, so exports reconcile exactly;
//   * emit one Verification event per verified block (pass/fail,
//     attribution, recalc cost) from inside the verify kernel bodies;
//   * match a failed verification back to the pending fault injection
//     whose coordinates fall inside the verified block, stamp the
//     injector record, and emit a Detection event carrying the
//     detection latency (virtual time from injection to detection);
//   * emit Opt-2 placement decisions (with the model's predicted
//     costs), Opt-3 skips, corrections, checksum repairs, checkpoints,
//     rollbacks and reruns.
//
// Thread safety: a mutex serializes the recording methods, so kernels
// running on thread-pool workers may report through a shared Telemetry;
// the attached sink and injector are only ever touched under that lock.
// The pointers themselves are wired once at construction and immutable
// after, and the locking is annotated for clang's -Wthread-safety
// (docs/static-analysis.md).
#pragma once

#include <cstdint>

#include "abft/checksum.hpp"
#include "common/thread_annotations.hpp"
#include "abft/options.hpp"
#include "fault/fault.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "sim/machine.hpp"

namespace ftla::abft {

/// Histogram name for the injection-to-detection virtual-time gap.
inline constexpr const char* kDetectionLatencyMetric =
    "abft.detection_latency_s";

class Telemetry {
 public:
  /// All pointers optional and not owned. When `injector` is non-null
  /// and a sink is attached, the injector is wired to the machine's
  /// virtual clock so injection records carry timestamps. `profile` is
  /// the profiler span store the driver tags phases/iterations on.
  Telemetry(sim::Machine& m, obs::EventSink* sink,
            obs::MetricsRegistry* metrics, fault::Injector* injector,
            obs::SpanStore* profile = nullptr,
            obs::TimeSeriesStore* timeseries = nullptr);

  [[nodiscard]] bool active() const noexcept {
    return sink_ != nullptr || metrics_ != nullptr ||
           timeseries_ != nullptr;
  }

  /// The attached profiler store (nullptr when profiling is off);
  /// drivers hand it to obs::PhaseScope around ABFT program phases.
  [[nodiscard]] obs::SpanStore* profile() const noexcept { return profile_; }

  /// Stamps the outer iteration subsequent profiler spans belong to
  /// (-1 = outside the factorization loop). No-op when unattached.
  void begin_iteration(int iteration) {
    if (profile_ != nullptr) profile_->set_iteration(iteration);
  }

  /// A verification batch was scheduled (issue time, both execution
  /// modes) — bumps the "abft.verify.<op>_blocks" counter that mirrors
  /// VerificationCounters.
  void verify_scheduled(fault::Op attr, std::size_t blocks);

  /// Opt 3 skipped a verification site this iteration.
  void verify_skipped(fault::Op attr, std::size_t blocks, int iteration);

  /// One block was verified (called from inside a verify body, Numeric
  /// mode). The block's global element range is rows [row0, row0+rows)
  /// x cols [col0, col0+cols); chk_row0 >= 0 additionally gives its row
  /// range [chk_row0, chk_row0+2) in checksum space for schemes whose
  /// faults can target stored checksums (-1 otherwise).
  void block_verified(const VerifyOutcome& out, fault::Op attr,
                      int iteration, int block_row, int block_col,
                      std::int64_t recalc_flops, int row0, int rows,
                      int col0, int cols, int chk_row0 = -1);

  /// Opt-2 decision, with the analytic model's predicted times.
  void placement_decided(UpdatePlacement requested, UpdatePlacement chosen,
                         double t_pick_gpu_s, double t_pick_cpu_s);

  void checkpoint_taken(int next_iteration);
  void rollback(int to_iteration);
  void rerun(int rerun_count, const char* reason);

 private:
  /// Oldest still-latent injection whose target lies in the given
  /// ranges; -1 when none. Reads the injector's records, so the caller
  /// must hold the recording lock.
  [[nodiscard]] std::int64_t match_injection(int row0, int rows, int col0,
                                             int cols, int chk_row0) const
      FTLA_REQUIRES(mu_);

  mutable common::Mutex mu_;
  sim::Machine& m_;
  obs::EventSink* const sink_;
  obs::MetricsRegistry* const metrics_;
  fault::Injector* const injector_;
  obs::SpanStore* const profile_;
  obs::TimeSeriesStore* const timeseries_;
  double last_detection_latency_ FTLA_GUARDED_BY(mu_) = 0.0;
};

}  // namespace ftla::abft
