#include "abft/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <utility>
#include <vector>

#include "abft/opt2_model.hpp"
#include "abft/telemetry.hpp"
#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "blas/types.hpp"
#include "common/error.hpp"
#include "common/fp.hpp"
#include "runtime/executor.hpp"
#include "runtime/sanitizer.hpp"
#include "sim/device_matrix.hpp"
#include "sim/gpublas.hpp"

namespace ftla::abft {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;
using sim::DConstMat;
using sim::DeviceBuffer;
using sim::DMat;
using sim::EventId;
using sim::KernelClass;
using sim::KernelDesc;
using sim::Machine;
using sim::StreamId;

const char* to_string(Variant v) {
  switch (v) {
    case Variant::NoFt: return "no-ft";
    case Variant::Offline: return "offline-abft";
    case Variant::Online: return "online-abft";
    case Variant::EnhancedOnline: return "enhanced-online-abft";
  }
  return "?";
}

const char* to_string(UpdatePlacement p) {
  switch (p) {
    case UpdatePlacement::Blocking: return "blocking";
    case UpdatePlacement::Gpu: return "gpu";
    case UpdatePlacement::Cpu: return "cpu";
    case UpdatePlacement::Auto: return "auto";
  }
  return "?";
}

const char* to_string(Recovery r) {
  return r == Recovery::Rerun ? "rerun" : "checkpoint";
}

const char* to_string(RuntimeMode m) {
  return m == RuntimeMode::Dag ? "dag" : "bulk";
}

int resolve_block_size(const sim::MachineProfile& profile,
                       const CholeskyOptions& options) {
  return options.block_size > 0 ? options.block_size
                                : profile.magma_block_size;
}

namespace {

/// Block coordinates (block_row, block_col) in the block grid.
using BlockId = std::pair<int, int>;

class Run {
 public:
  Run(Machine& m, Matrix<double>* a, int n, const CholeskyOptions& opt,
      fault::Injector* injector)
      : m_(m), a_(a), n_(n), opt_(opt), injector_(injector),
        tel_(m, opt.event_sink, opt.metrics, injector, opt.profile,
             opt.timeseries) {
    FTLA_CHECK(n_ > 0);
    if (m_.numeric()) {
      FTLA_CHECK_MSG(a_ != nullptr && a_->rows() == n_ && a_->cols() == n_,
                     "Numeric mode needs the host matrix");
    }
    FTLA_CHECK_MSG(injector_ == nullptr || m_.numeric(),
                   "fault injection requires Numeric mode");
    FTLA_CHECK(opt_.verify_interval >= 1);
    FTLA_CHECK(opt_.checkpoint_interval >= 1);
    FTLA_CHECK(opt_.max_reruns >= 0 && opt_.max_rollbacks >= 0);
    b_ = resolve_block_size(m_.profile(), opt_);
    nb_ = (n_ + b_ - 1) / b_;
    ft_ = opt_.variant != Variant::NoFt;
    placement_ = opt_.placement;
    if (!ft_) placement_ = UpdatePlacement::Gpu;  // no checksums to place
    if (placement_ == UpdatePlacement::Auto) {
      placement_ = opt2_decide(m_.profile(), n_, b_, opt_.verify_interval)
                       .decision;
    }
    if (ft_ && tel_.active()) {
      const Opt2Estimate est =
          opt2_decide(m_.profile(), n_, b_, opt_.verify_interval);
      tel_.placement_decided(opt_.placement, placement_, est.t_pick_gpu_s,
                             est.t_pick_cpu_s);
    }
    // Panel checkpointing needs real panel data, so it is Numeric-only;
    // a TimingOnly run silently ignores the store.
    ck_ = m_.numeric() ? opt_.panel_checkpoint : nullptr;
    if (ck_ != nullptr) {
      if (ck_->usable(n_, b_) && ck_->columns.rows() == n_ &&
          ck_->columns.cols() == n_) {
        resume_from_ = std::min(ck_->iterations, nb_);
        ck_->iterations = resume_from_;
      } else {
        ck_->n = n_;
        ck_->block = b_;
        ck_->iterations = 0;
        if (ck_->columns.rows() != n_ || ck_->columns.cols() != n_) {
          ck_->columns = Matrix<double>(n_, n_);
        }
      }
      result_.resumed_iterations = resume_from_;
    }
    // Causal tracing (docs/observability.md): the driver roots its
    // "factorize" span at the fixed child slot of the caller's context,
    // so the service's attempt span and the driver's spans agree on ids
    // without further coordination.
    trace_ = opt_.trace != nullptr && opt_.trace_ctx.valid() ? opt_.trace
                                                             : nullptr;
    if (trace_ != nullptr) {
      trace_factorize_ =
          obs::derive_span_id(opt_.trace_ctx.span_id, obs::kTraceDriverChild);
    }
  }

  CholeskyResult execute();

 private:
  // ---- geometry -----------------------------------------------------
  [[nodiscard]] int bs(int i) const { return std::min(b_, n_ - i * b_); }
  [[nodiscard]] int off(int i) const { return i * b_; }

  [[nodiscard]] DMat data_block(int i, int k) {
    return DMat{&d_a_, static_cast<std::int64_t>(off(k)) * n_ + off(i),
                bs(i), bs(k), n_};
  }
  /// Rectangular region of the data matrix in element coordinates.
  [[nodiscard]] DMat data_region(int row, int col, int rows, int cols) {
    return DMat{&d_a_, static_cast<std::int64_t>(col) * n_ + row, rows, cols,
                n_};
  }
  /// Device checksum rows (2 x cols of block (i,k)).
  [[nodiscard]] DMat chk_block(int i, int k) {
    return DMat{&d_chk_,
                static_cast<std::int64_t>(off(k)) * (2 * nb_) + 2 * i,
                kChecksumRows, bs(k), 2 * nb_};
  }
  /// Device checksum strip: rows of block-rows [i0, i1) over element
  /// columns [col, col+cols).
  [[nodiscard]] DMat chk_strip(int i0, int i1, int col, int cols) {
    return DMat{&d_chk_, static_cast<std::int64_t>(col) * (2 * nb_) + 2 * i0,
                2 * (i1 - i0), cols, 2 * nb_};
  }
  /// Host mirror equivalents (placement == Cpu).
  [[nodiscard]] MatrixView<double> h_chk_block(int i, int k) {
    return h_chk_.block(2 * i, off(k), kChecksumRows, bs(k));
  }
  [[nodiscard]] MatrixView<double> h_chk_strip(int i0, int i1, int col,
                                               int cols) {
    return h_chk_.block(2 * i0, col, 2 * (i1 - i0), cols);
  }

  // ---- phases --------------------------------------------------------
  void allocate();
  void upload();
  void encode();
  void iterate(int j);
  void run_once();
  void take_checkpoint(int next_iter);
  void save_panels(int upto);
  void rollback();
  void final_download();
  void offline_final_verify();

  // ---- checksum maintenance -------------------------------------------
  void chk_update_syrk(int j);
  void chk_update_gemm(int j);
  void chk_update_trsm(int j, EventId e_l_ready);
  void fetch_panel_for_cpu_update(int j);
  void wait_panel(int j);

  // ---- verification ----------------------------------------------------
  void verify_blocks(const std::vector<BlockId>& blocks, fault::Op attr);
  void issue_block_verify(StreamId s, int bi, int bk, fault::Op attr,
                          std::int64_t scratch_col, int iter);
  void absorb(const VerifyOutcome& out);
  [[nodiscard]] StreamId chk_stream() const {
    return placement_ == UpdatePlacement::Gpu ? s_chk_ : s_compute_;
  }

  // ---- task-graph (DAG) runtime path -----------------------------------
  // The DAG path expresses the same kernel sequence as a dependency
  // graph (docs/runtime.md). It covers the device-resident checksum
  // placements and Rerun recovery; the remaining combinations (CPU
  // checksum mirror, checkpoint recovery, fleet panel checkpoints)
  // fall back to the bulk-synchronous oracle.
  [[nodiscard]] bool use_dag() const {
    return opt_.runtime == RuntimeMode::Dag &&
           placement_ != UpdatePlacement::Cpu && !checkpointing_ &&
           ck_ == nullptr;
  }
  void run_once_dag();
  void dag_encode(runtime::TaskGraph& g);
  void dag_iteration(runtime::TaskGraph& g, int j);
  void dag_verify(runtime::TaskGraph& g, int bi, int bk, fault::Op attr,
                  int iter);
  void dag_hook(runtime::TaskGraph& g, const char* name, int iter,
                std::function<void()> fn);
  [[nodiscard]] std::vector<StreamId> dag_streams() const;

  // Tile namespaces for dependency inference: data blocks, checksum
  // blocks, the reused host diagonal staging buffer (h_diag_ +
  // h_diag_chk_, one tile so cross-iteration reuse hazards serialize),
  // and recalc scratch slots.
  enum TileSpace : int { kTileData = 0, kTileChk, kTileHost, kTileScratch };
  [[nodiscard]] static runtime::TileKey dtile(int i, int k) {
    return {kTileData, i, k};
  }
  [[nodiscard]] static runtime::TileKey ctile(int i, int k) {
    return {kTileChk, i, k};
  }
  [[nodiscard]] static runtime::TileKey htile() { return {kTileHost, 0, 0}; }
  [[nodiscard]] static runtime::TileKey stile(int slot) {
    return {kTileScratch, slot, 0};
  }

  // ---- fault hooks ------------------------------------------------------
  void hook_storage(fault::Op op, int j);
  void hook_computing(fault::Op op, int j);
  void poll_window_faults(fault::Op op, int j);
  void apply_storage_fault(const fault::FaultSpec& spec, int j);
  void apply_computing_fault(const fault::FaultSpec& spec, int j);

  // ---- members ----------------------------------------------------------
  Machine& m_;
  Matrix<double>* a_;
  int n_;
  CholeskyOptions opt_;
  fault::Injector* injector_;
  Telemetry tel_;
  /// Outer iteration currently executing; -1 outside the j-loop (encode,
  /// offline final sweep) — used only to annotate telemetry events.
  int cur_iter_ = -1;

  int b_ = 0;
  int nb_ = 0;
  bool ft_ = false;
  UpdatePlacement placement_ = UpdatePlacement::Gpu;

  DeviceBuffer d_a_;
  DeviceBuffer d_chk_;
  DeviceBuffer d_scratch_;
  std::int64_t scratch_capacity_cols_ = 0;
  /// Round-robin scratch-slot cursor for DAG verify tasks (each slot is
  /// b_ columns wide; slot reuse serializes through the slot tile).
  std::int64_t dag_slot_ = 0;

  // Checkpoint state (Recovery::Checkpoint): on-device snapshots of the
  // matrix (and checksums), plus a host snapshot of the checksum mirror
  // when updating runs on the CPU.
  bool checkpointing_ = false;
  DeviceBuffer d_ckpt_a_;
  DeviceBuffer d_ckpt_chk_;
  Matrix<double> h_ckpt_chk_;
  int ckpt_iter_ = 0;

  // Fleet panel-checkpoint store (options.panel_checkpoint, Numeric
  // only): host-side slab of retired panel columns, refreshed every
  // checkpoint_interval iterations; resume_from_ is the outer iteration
  // this run starts at when the store seeded it.
  PanelCheckpoint* ck_ = nullptr;
  int resume_from_ = 0;

  Matrix<double> pristine_;     // host copy for recovery reruns
  Matrix<double> h_chk_;        // host checksum mirror (placement Cpu)
  Matrix<double> h_scratch_;    // host landing area for recalc batches
  Matrix<double> h_diag_;       // host diagonal block for POTF2
  Matrix<double> h_diag_chk_;   // its checksum rows
  // Double-buffered host copies of the decomposed row panel (placement
  // Cpu): the panel for iteration j+1 is prefetched over PCIe while the
  // host still works with iteration j's buffer.
  Matrix<double> h_panel_[2];
  EventId panel_event_[2] = {-1, -1};
  int panel_iter_[2] = {-1, -1};

  StreamId s_compute_ = 0;
  StreamId s_chk_ = 0;
  StreamId s_xfer_ = 0;
  std::vector<StreamId> s_recalc_;

  /// Records one span under the job's causal trace (no-op when tracing
  /// is off). Device and tenant come from the caller's context.
  void trace_span(obs::SpanId id, obs::SpanId parent, const char* name,
                  const char* kind, double start, double end,
                  const char* status, std::string detail = {}) {
    if (trace_ == nullptr) return;
    obs::TraceSpan s;
    s.trace_id = opt_.trace_ctx.trace_id;
    s.span_id = id;
    s.parent_span = parent;
    s.name = name;
    s.kind = kind;
    s.device = opt_.trace_ctx.device;
    s.tenant = opt_.trace_ctx.tenant;
    s.start = start;
    s.end = end;
    s.status = status;
    s.detail = std::move(detail);
    trace_->record(s);
  }

  obs::TraceStore* trace_ = nullptr;      // null = tracing off
  obs::SpanId trace_factorize_ = 0;       // the driver's root span id
  obs::SpanId trace_pass_ = 0;            // current pass span id
  double trace_pass_start_ = 0.0;
  int trace_pass_count_ = 0;

  CholeskyResult result_;
};

CholeskyResult Run::execute() {
  allocate();

  upload();
  m_.sync_all();
  const double t0 = m_.host_now();

  if (trace_ != nullptr && resume_from_ > 0) {
    trace_span(obs::derive_span_id(trace_factorize_, 1), trace_factorize_,
               "resume", "marker", t0, t0, "ok",
               "iterations=" + std::to_string(resume_from_));
  }

  bool done = false;
  try {
    while (!done) {
      ++trace_pass_count_;
      trace_pass_ = obs::derive_span_id(
          trace_factorize_,
          obs::kTraceIterationChildBase +
              static_cast<std::uint64_t>(trace_pass_count_));
      trace_pass_start_ = m_.host_now();
      try {
        run_once();
        done = true;
        result_.success = true;
        trace_span(trace_pass_, trace_factorize_, "pass", "pass",
                   trace_pass_start_, m_.host_now(), "ok");
      } catch (const NotPositiveDefiniteError& e) {
        trace_span(trace_pass_, trace_factorize_, "pass", "pass",
                   trace_pass_start_, m_.host_now(), "error",
                   "not_positive_definite");
        result_.fail_stop_observed = true;
        if (opt_.variant == Variant::NoFt ||
            result_.reruns >= opt_.max_reruns) {
          result_.note = std::string("fail-stop: ") + e.what();
          done = true;
        } else {
          ++result_.reruns;
          tel_.rerun(result_.reruns, "not_positive_definite");
          const obs::PhaseScope recover(tel_.profile(), obs::Phase::Recover);
          upload();
        }
      } catch (const UnrecoverableCorruptionError& e) {
        trace_span(trace_pass_, trace_factorize_, "pass", "pass",
                   trace_pass_start_, m_.host_now(), "error",
                   "unrecoverable_corruption");
        if (opt_.variant == Variant::NoFt ||
            result_.reruns >= opt_.max_reruns) {
          result_.note = std::string("unrecoverable: ") + e.what();
          done = true;
        } else {
          ++result_.reruns;
          tel_.rerun(result_.reruns, "unrecoverable_corruption");
          const obs::PhaseScope recover(tel_.profile(), obs::Phase::Recover);
          upload();
        }
      }
    }
  } catch (...) {
    // A device loss (or any other failure the retry ladder does not
    // handle) unwinds out of the driver: close the open pass and
    // factorize spans first so the trace keeps its parentage intact —
    // the service's attempt span records the loss itself.
    const double at = m_.host_now();
    trace_span(trace_pass_, trace_factorize_, "pass", "pass",
               trace_pass_start_, at, "loss");
    trace_span(trace_factorize_, opt_.trace_ctx.span_id, "factorize",
               "driver", t0, at, "loss");
    throw;
  }

  m_.sync_all();
  result_.seconds = m_.host_now() - t0;
  const double flops = static_cast<double>(n_) * n_ * n_ / 3.0;
  result_.gflops =
      result_.seconds > 0.0 ? flops / result_.seconds / 1e9 : 0.0;
  result_.chosen_placement = placement_;

  trace_span(trace_factorize_, opt_.trace_ctx.span_id, "factorize", "driver",
             t0, t0 + result_.seconds, result_.success ? "ok" : "error");

  if (result_.success) final_download();
  return result_;
}

void Run::allocate() {
  d_a_ = m_.alloc(static_cast<std::int64_t>(n_) * n_);
  if (ft_) {
    d_chk_ = m_.alloc(static_cast<std::int64_t>(2 * nb_) * n_);
    scratch_capacity_cols_ =
        static_cast<std::int64_t>(nb_) * nb_ * b_ + 2LL * nb_ * b_;
    d_scratch_ = m_.alloc(2 * scratch_capacity_cols_);
    if (m_.numeric()) {
      h_scratch_ = Matrix<double>(2, static_cast<int>(scratch_capacity_cols_));
      if (placement_ == UpdatePlacement::Cpu) {
        h_chk_ = Matrix<double>(2 * nb_, n_);
        h_panel_[0] = Matrix<double>(b_, n_);
        h_panel_[1] = Matrix<double>(b_, n_);
      }
    }
    h_diag_chk_ = Matrix<double>(kChecksumRows, b_);
  }
  h_diag_ = Matrix<double>(b_, b_);
  if (m_.numeric()) pristine_ = *a_;

  checkpointing_ = opt_.recovery == Recovery::Checkpoint &&
                   opt_.variant != Variant::Offline;
  if (checkpointing_) {
    d_ckpt_a_ = m_.alloc(static_cast<std::int64_t>(n_) * n_);
    if (ft_ && placement_ != UpdatePlacement::Cpu) {
      d_ckpt_chk_ = m_.alloc(static_cast<std::int64_t>(2 * nb_) * n_);
    }
  }

  s_compute_ = m_.default_stream();
  if (ft_) {
    s_chk_ = m_.create_stream();
    s_xfer_ = m_.create_stream();
    int streams = opt_.recalc_streams > 0
                      ? opt_.recalc_streams
                      : m_.profile().max_concurrent_kernels;
    if (!opt_.concurrent_recalc) streams = 1;
    s_recalc_.clear();
    for (int i = 0; i < streams; ++i) s_recalc_.push_back(m_.create_stream());
  } else if (use_dag()) {
    // NoFt DAG: one extra lane so the graph can overlap the diagonal
    // staging copies with the trailing update of the previous iteration.
    s_xfer_ = m_.create_stream();
  }
}

void Run::upload() {
  m_.memcpy_h2d(d_a_, 0, m_.numeric() ? pristine_.data() : nullptr,
                static_cast<std::int64_t>(n_) * n_, s_compute_,
                /*blocking=*/true);
  if (ck_ == nullptr) return;
  // A rerun escalation restarts from the resume point, so panels saved
  // by the failed attempt are discarded along with the device state.
  if (ck_->iterations > resume_from_) ck_->iterations = resume_from_;
  if (resume_from_ > 0) {
    // Seed the resume: overwrite the retired block columns with the
    // checkpointed factor slab. Everything right of them is pristine by
    // the left-looking invariant, so this is the complete mid-run state.
    m_.memcpy_h2d(d_a_, 0, ck_->columns.data(),
                  static_cast<std::int64_t>(off(resume_from_)) * n_,
                  s_compute_, /*blocking=*/true);
  }
}

void Run::encode() {
  if (!ft_) return;
  // Profiler attribution: everything issued here (the encode kernels
  // and, for placement Cpu, the checksum D2H move) is encode overhead.
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Encode);
  // One BLAS-2 encode kernel per lower-triangle block, spread across the
  // recalc streams so encoding itself benefits from concurrency.
  const EventId e_up = m_.record_event(s_compute_);
  for (StreamId s : s_recalc_) m_.stream_wait_event(s, e_up);
  int q = 0;
  for (int k = 0; k < nb_; ++k) {
    for (int i = k; i < nb_; ++i) {
      const StreamId s = s_recalc_[q++ % s_recalc_.size()];
      const DMat blk = data_block(i, k);
      const DMat chk = chk_block(i, k);
      KernelDesc d{"encode", KernelClass::Blas2,
                   blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
      m_.launch(s, d, [blk, chk] {
        encode_block(ConstMatrixView<double>(blk.view()), chk.view());
      });
    }
  }
  for (StreamId s : s_recalc_) {
    const EventId e = m_.record_event(s);
    m_.stream_wait_event(s_compute_, e);
    m_.stream_wait_event(s_chk_, e);
  }
  if (placement_ == UpdatePlacement::Cpu) {
    // Paper §VI-6a: the initial checksums move to the host once.
    m_.sync_stream(s_compute_);
    m_.memcpy_d2h(m_.numeric() ? h_chk_.data() : nullptr, d_chk_, 0,
                  static_cast<std::int64_t>(2 * nb_) * n_, s_compute_,
                  /*blocking=*/true);
  }
}

void Run::run_once() {
  if (use_dag()) {
    run_once_dag();
    return;
  }
  panel_iter_[0] = panel_iter_[1] = -1;  // panels are stale after a rerun
  encode();
  // Stochastic transfer faults cover the H2D copies between encode and
  // the final download (a corrupted *initial* upload is indistinguishable
  // from a different input — no ABFT can detect it). D2H staging copies
  // are armed individually where an arrival check exists (transfer_guard).
  sim::TransferArmGuard arm(m_, /*h2d=*/true, /*d2h=*/false);
  if (checkpointing_) take_checkpoint(resume_from_);
  // Resuming mid-matrix with CPU-side checksum updating: the first
  // resumed iteration needs its decomposed row panel on the host (a
  // no-op for cold starts and for the other placements).
  fetch_panel_for_cpu_update(resume_from_);
  int rollbacks_left = opt_.max_rollbacks;
  int j = resume_from_;
  while (j < nb_) {
    if (checkpointing_ && rollbacks_left > 0) {
      try {
        iterate(j);
      } catch (const Error&) {
        // Timely detection (Online/Enhanced) guarantees the corruption
        // postdates the snapshot: roll back and resume instead of
        // restarting the whole factorization.
        --rollbacks_left;
        ++result_.rollbacks;
        rollback();
        j = ckpt_iter_;
        continue;
      }
    } else {
      iterate(j);
    }
    ++j;
    if (checkpointing_ && j < nb_ && j % opt_.checkpoint_interval == 0) {
      take_checkpoint(j);
    }
    if (ck_ != nullptr && j < nb_ && j % opt_.checkpoint_interval == 0 &&
        j > ck_->iterations) {
      save_panels(j);
    }
  }
  if (opt_.variant == Variant::Offline) {
    offline_final_verify();
  } else if (ft_ && opt_.transfer_guard) {
    // Transfer-fault hardening: pre-use verification cannot see a
    // strike on a retired output block (nothing reads it again), so
    // the guard closes the output-at-rest window with one end sweep.
    // Unlike the offline sweep, timely in-loop detection guarantees a
    // sweep-detected error never propagated — anything it finds struck
    // after the block's last verification and was never read since —
    // so in-place correction is safe; uncorrectable damage escalates.
    cur_iter_ = -1;
    tel_.begin_iteration(-1);
    std::vector<BlockId> all;
    for (int k = 0; k < nb_; ++k)
      for (int i = k; i < nb_; ++i) all.emplace_back(i, k);
    verify_blocks(all, fault::Op::Gemm);
  }
  m_.sync_all();
}

void Run::take_checkpoint(int next_iter) {
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Recover);
  // The checkpoint window is itself exposed: a storage strike arriving
  // now lands *before* the snapshot, so the snapshot preserves the
  // corruption and rollback alone cannot clear it (data strikes stay
  // correctable — the checksum snapshot is taken from the untouched
  // checksum state — while harder cases escalate up the ladder).
  poll_window_faults(fault::Op::Syrk, next_iter);
  // Snapshot a consistent (matrix, checksum) pair: all checksum-stream
  // work must land first.
  m_.stream_wait_event(s_compute_, m_.record_event(chk_stream()));
  m_.memcpy_d2d(d_ckpt_a_, 0, d_a_, 0, static_cast<std::int64_t>(n_) * n_,
                s_compute_);
  if (ft_) {
    if (placement_ == UpdatePlacement::Cpu) {
      if (m_.numeric()) h_ckpt_chk_ = h_chk_;
      KernelDesc d{"ckpt_chk_host", KernelClass::HostChecksum,
                   static_cast<std::int64_t>(2 * nb_) * n_, 0};
      m_.host_compute(d, {});
    } else {
      m_.memcpy_d2d(d_ckpt_chk_, 0, d_chk_, 0,
                    static_cast<std::int64_t>(2 * nb_) * n_, s_compute_);
    }
  }
  ckpt_iter_ = next_iter;
  tel_.checkpoint_taken(next_iter);
}

void Run::save_panels(int upto) {
  // Fleet panel checkpoint (docs/fleet.md): ship the block columns
  // retired since the last save to the host store. Left-looking
  // Cholesky never rewrites them and they were verified before they
  // retired, so this one D2H copy is the entire checkpoint — no device
  // snapshot, no extra verification — and it survives the device.
  const int c0 = off(ck_->iterations);
  const int cols = off(upto) - c0;
  if (cols <= 0) return;
  // The shipped columns were verified when their iterations retired,
  // but a storage strike landing *after* that verification would be
  // frozen into the checkpoint — and a resume re-encodes checksums
  // from the slab, so the corruption becomes undetectable forever.
  // Surface any pending strikes, then re-verify (correcting in place)
  // everything about to leave the device; uncorrectable damage
  // escalates up the rerun ladder like any other detection.
  if (ft_) {
    poll_window_faults(fault::Op::Syrk, upto);
    std::vector<BlockId> shipped;
    for (int k = ck_->iterations; k < upto; ++k) {
      for (int i = k; i < nb_; ++i) shipped.emplace_back(i, k);
    }
    verify_blocks(shipped, fault::Op::Gemm);
  }
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Recover);
  const double ck_t0 = m_.host_now();
  m_.sync_stream(s_compute_);
  m_.memcpy_d2h(ck_->columns.data() + static_cast<std::int64_t>(c0) * n_,
                d_a_, static_cast<std::int64_t>(c0) * n_,
                static_cast<std::int64_t>(cols) * n_, s_xfer_,
                /*blocking=*/true);
  ck_->iterations = upto;
  const std::int64_t bytes =
      static_cast<std::int64_t>(cols) * n_ * static_cast<int>(sizeof(double));
  result_.checkpoint_bytes += bytes;
  trace_span(obs::derive_span_id(trace_pass_,
                                 obs::kTraceCheckpointChildBase +
                                     static_cast<std::uint64_t>(upto)),
             trace_pass_, "checkpoint", "checkpoint", ck_t0, m_.host_now(),
             "ok",
             "iterations=" + std::to_string(upto) +
                 " bytes=" + std::to_string(bytes));
  tel_.checkpoint_taken(upto);
}

void Run::rollback() {
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Recover);
  m_.sync_all();
  m_.memcpy_d2d(d_a_, 0, d_ckpt_a_, 0, static_cast<std::int64_t>(n_) * n_,
                s_compute_);
  if (ft_) {
    if (placement_ == UpdatePlacement::Cpu) {
      if (m_.numeric()) h_chk_ = h_ckpt_chk_;
      KernelDesc d{"restore_chk_host", KernelClass::HostChecksum,
                   static_cast<std::int64_t>(2 * nb_) * n_, 0};
      m_.host_compute(d, {});
    } else {
      m_.memcpy_d2d(d_chk_, 0, d_ckpt_chk_, 0,
                    static_cast<std::int64_t>(2 * nb_) * n_, s_compute_);
    }
  }
  m_.sync_stream(s_compute_);
  panel_iter_[0] = panel_iter_[1] = -1;  // host panel cache is stale
  tel_.rollback(ckpt_iter_);
  // Recovery is not a safe harbor: storage faults arriving during the
  // restore strike the just-restored state and must be caught by the
  // verifications of the resumed iterations.
  poll_window_faults(fault::Op::Syrk, ckpt_iter_);
}

void Run::final_download() {
  if (!m_.numeric()) return;
  // Outside the timed section: MAGMA's dpotrf_gpu leaves the factor on
  // the device; callers fetch it separately.
  m_.memcpy_d2h(a_->data(), d_a_, 0, static_cast<std::int64_t>(n_) * n_,
                s_compute_, /*blocking=*/true);
}

// ----------------------------------------------------------------------
// Verification
// ----------------------------------------------------------------------

void Run::absorb(const VerifyOutcome& out) {
  result_.errors_detected += out.errors_detected;
  result_.errors_corrected += out.errors_corrected;
  result_.checksum_repairs += out.checksum_repairs;
  if (out.uncorrectable) {
    throw UnrecoverableCorruptionError(
        "more than one error per block column");
  }
}

void Run::verify_blocks(const std::vector<BlockId>& blocks, fault::Op attr) {
  if (!ft_ || blocks.empty()) return;
  // Recalc kernels classify as Recalc by name; the scope catches the
  // neutral spans issued here (scratch D2H batch, host repair H2Ds).
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Verify);
  switch (attr) {
    case fault::Op::Potf2: result_.verified.potf2_blocks += blocks.size(); break;
    case fault::Op::Trsm: result_.verified.trsm_blocks += blocks.size(); break;
    case fault::Op::Syrk: result_.verified.syrk_blocks += blocks.size(); break;
    case fault::Op::Gemm: result_.verified.gemm_blocks += blocks.size(); break;
  }
  tel_.verify_scheduled(attr, blocks.size());

  // Recalc kernels must observe the data state after all compute so far
  // and the checksum state after all updates so far.
  const EventId e_comp = m_.record_event(s_compute_);
  const EventId e_chk = m_.record_event(chk_stream());
  const int nstreams = std::max(
      1, std::min(static_cast<int>(s_recalc_.size()),
                  static_cast<int>(blocks.size())));
  for (int i = 0; i < nstreams; ++i) {
    m_.stream_wait_event(s_recalc_[i], e_comp);
    m_.stream_wait_event(s_recalc_[i], e_chk);
  }

  // Lay the recalculated checksums side by side in the scratch buffer.
  std::int64_t col_pos = 0;
  const bool device_compare = placement_ != UpdatePlacement::Cpu;
  struct Placed {
    BlockId id;
    std::int64_t col;
  };
  std::vector<Placed> placed;
  placed.reserve(blocks.size());
  for (std::size_t q = 0; q < blocks.size(); ++q) {
    const auto [bi, bk] = blocks[q];
    const DMat blk = data_block(bi, bk);
    FTLA_CHECK(col_pos + blk.cols <= scratch_capacity_cols_);
    placed.push_back(Placed{blocks[q], col_pos});
    const StreamId s = s_recalc_[q % nstreams];
    if (device_compare) {
      // Recalc + compare + correct in place on the device, one stream so
      // the compare observes the freshly computed sums.
      issue_block_verify(s, bi, bk, attr, col_pos, cur_iter_);
    } else {
      const DMat scratch{&d_scratch_, 2 * col_pos, kChecksumRows, blk.cols,
                         2};
      KernelDesc rd{"recalc", KernelClass::Blas2,
                    blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
      m_.launch(s, rd, [blk, scratch] {
        encode_block(ConstMatrixView<double>(blk.view()), scratch.view());
      });
    }
    col_pos += blk.cols;
  }

  for (int i = 0; i < nstreams; ++i) {
    const EventId e = m_.record_event(s_recalc_[i]);
    m_.stream_wait_event(s_compute_, e);
    m_.stream_wait_event(chk_stream(), e);
  }

  if (!device_compare) {
    // Placement Cpu: stored checksums live on the host; ship the whole
    // recalc batch over in one transfer (paper §VI-6c) and compare there.
    m_.memcpy_d2h_2d(m_.numeric() ? h_scratch_.data() : nullptr, 2,
                     d_scratch_, 0, 2, 2, static_cast<int>(col_pos),
                     s_compute_, /*blocking=*/true);
    const Tolerance tol = opt_.tolerance;
    KernelDesc hd{"verify_host", KernelClass::HostChecksum, 4 * col_pos, 0};
    std::vector<Placed> items = placed;
    m_.host_compute(hd, [this, items, tol, attr] {
      for (const auto& p : items) {
        const auto [bi, bk] = p.id;
        const DMat blk = data_block(bi, bk);
        auto out = verify_block(
            blk.view(), h_chk_block(bi, bk),
            ConstMatrixView<double>(
                h_scratch_.block(0, static_cast<int>(p.col), 2, blk.cols)),
            tol);
        // Repairs computed on the host must cross back over PCIe.
        for (std::size_t c = 0; c < out.corrections.size(); ++c) {
          m_.memcpy_h2d(d_a_, 0, nullptr, 0, s_compute_);
        }
        tel_.block_verified(out, attr, cur_iter_, bi, bk,
                            blas::gemv_flops(blk.rows, blk.cols) * 2,
                            off(bi), blk.rows, off(bk), blk.cols, 2 * bi);
        absorb(out);
      }
    });
  }
}

// One block verification: recalc the block's column sums into the
// scratch slot at `scratch_col`, then compare against the stored
// checksum rows and correct in place. Both launches ride the same
// stream so the compare observes the fresh sums. Shared by the bulk
// batches (which pass cur_iter_) and the DAG verify tasks (which pass
// the iteration the task belongs to).
void Run::issue_block_verify(StreamId s, int bi, int bk, fault::Op attr,
                             std::int64_t scratch_col, int iter) {
  const DMat blk = data_block(bi, bk);
  const DMat scratch{&d_scratch_, 2 * scratch_col, kChecksumRows, blk.cols,
                     2};
  KernelDesc rd{"recalc", KernelClass::Blas2,
                blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
  m_.launch(s, rd, [blk, scratch] {
    encode_block(ConstMatrixView<double>(blk.view()), scratch.view());
  });
  const DMat chk = chk_block(bi, bk);
  const Tolerance tol = opt_.tolerance;
  KernelDesc cd{"verify", KernelClass::Compare, 4LL * blk.cols, 0};
  const std::int64_t rflops = rd.flops;
  m_.launch(s, cd,
            [this, blk, chk, scratch, tol, attr, bi, bk, rflops, iter] {
              const VerifyOutcome out =
                  verify_block(blk.view(), chk.view(),
                               ConstMatrixView<double>(scratch.view()), tol);
              tel_.block_verified(out, attr, iter, bi, bk, rflops, off(bi),
                                  blk.rows, off(bk), blk.cols, 2 * bi);
              absorb(out);
            });
}

// ----------------------------------------------------------------------
// Checksum updating (paper §IV-B, placement per Opt 2)
// ----------------------------------------------------------------------

void Run::fetch_panel_for_cpu_update(int j) {
  if (!ft_ || placement_ != UpdatePlacement::Cpu || j <= 0 || j >= nb_) {
    return;
  }
  // Profiler: the panel staging copy exists only to feed host-side
  // checksum updating, so it is Update overhead.
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Update);
  // The CPU needs iteration j's decomposed row panel A[j, 0:j*B] to
  // update checksums (paper §VI-6b: n^2/2 words total). The panel is
  // final once iteration j-1's TRSM completed, so it is normally
  // prefetched at the end of the previous iteration into the other half
  // of the double buffer; this call is then a cheap idempotent check.
  const int slot = j & 1;
  if (panel_iter_[slot] == j) return;
  m_.stream_wait_event(s_xfer_, m_.record_event(s_compute_));
  m_.memcpy_d2h_2d(m_.numeric() ? h_panel_[slot].data() : nullptr, b_, d_a_,
                   off(j), n_, bs(j), off(j), s_xfer_);
  panel_event_[slot] = m_.record_event(s_xfer_);
  panel_iter_[slot] = j;
}

void Run::wait_panel(int j) {
  const int slot = j & 1;
  FTLA_CHECK(panel_iter_[slot] == j);
  m_.sync_event(panel_event_[slot]);
}

void Run::chk_update_syrk(int j) {
  if (!ft_ || j == 0) return;
  // The GPU path issues neutral gpublas names ("gemm"/"trsm"); the scope
  // is what tags them as checksum-update overhead.
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Update);
  const int jb = bs(j);
  const int w = off(j);  // width of the decomposed panel to the left
  if (placement_ == UpdatePlacement::Cpu) {
    wait_panel(j);
    KernelDesc d{"chk_syrk_cpu", KernelClass::HostChecksum,
                 blas::gemm_flops(kChecksumRows, jb, w), 0};
    m_.host_compute(d, [this, j, jb, w] {
      blas::gemm(Trans::No, Trans::Yes, -1.0,
                 ConstMatrixView<double>(h_chk_strip(j, j + 1, 0, w)),
                 ConstMatrixView<double>(h_panel_[j & 1].block(0, 0, jb, w)),
                 1.0, h_chk_block(j, j));
    });
    return;
  }
  // chk(A') = chk(A) - chk(LC) * LC^T
  sim::gpublas::gemm(m_, chk_stream(), Trans::No, Trans::Yes, -1.0,
                     chk_strip(j, j + 1, 0, w),
                     data_region(off(j), 0, jb, w), 1.0, chk_block(j, j),
                     KernelClass::Blas3Skinny);
}

void Run::chk_update_gemm(int j) {
  if (!ft_ || j == 0 || j + 1 >= nb_) return;
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Update);
  const int jb = bs(j);
  const int w = off(j);
  if (placement_ == UpdatePlacement::Cpu) {
    wait_panel(j);
    KernelDesc d{"chk_gemm_cpu", KernelClass::HostChecksum,
                 blas::gemm_flops(2 * (nb_ - j - 1), jb, w), 0};
    m_.host_compute(d, [this, j, jb, w] {
      blas::gemm(Trans::No, Trans::Yes, -1.0,
                 ConstMatrixView<double>(h_chk_strip(j + 1, nb_, 0, w)),
                 ConstMatrixView<double>(h_panel_[j & 1].block(0, 0, jb, w)),
                 1.0, h_chk_strip(j + 1, nb_, off(j), jb));
    });
    return;
  }
  // chk(B') = chk(B) - chk(LD) * LC^T, one skinny GEMM for the whole
  // block column.
  sim::gpublas::gemm(m_, chk_stream(), Trans::No, Trans::Yes, -1.0,
                     chk_strip(j + 1, nb_, 0, w),
                     data_region(off(j), 0, jb, w), 1.0,
                     chk_strip(j + 1, nb_, off(j), jb),
                     KernelClass::Blas3Skinny);
}

void Run::chk_update_trsm(int j, EventId e_l_ready) {
  if (!ft_ || j + 1 >= nb_) return;
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Update);
  const int jb = bs(j);
  if (placement_ == UpdatePlacement::Cpu) {
    KernelDesc d{"chk_trsm_cpu", KernelClass::HostChecksum,
                 blas::trsm_flops(Side::Right, 2 * (nb_ - j - 1), jb), 0};
    m_.host_compute(d, [this, j, jb] {
      blas::trsm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0,
                 ConstMatrixView<double>(h_diag_.block(0, 0, jb, jb)),
                 h_chk_strip(j + 1, nb_, off(j), jb));
    });
    return;
  }
  // chk(LB) = chk(B') * (LA^T)^{-1}; the factor block must be resident.
  m_.stream_wait_event(chk_stream(), e_l_ready);
  sim::gpublas::trsm(m_, chk_stream(), Side::Right, Uplo::Lower, Trans::Yes,
                     Diag::NonUnit, 1.0, data_block(j, j),
                     chk_strip(j + 1, nb_, off(j), jb),
                     KernelClass::Blas3Skinny);
}

// ----------------------------------------------------------------------
// Fault hooks
// ----------------------------------------------------------------------

void Run::hook_storage(fault::Op op, int j) {
  if (injector_ == nullptr) return;
  for (const auto& spec : injector_->take(fault::FaultType::Storage, op, j)) {
    apply_storage_fault(spec, j);
  }
}

void Run::hook_computing(fault::Op op, int j) {
  if (injector_ == nullptr) return;
  for (const auto& spec :
       injector_->take(fault::FaultType::Computing, op, j)) {
    apply_computing_fault(spec, j);
  }
}

void Run::poll_window_faults(fault::Op op, int j) {
  if (injector_ == nullptr || !m_.numeric()) return;
  for (const auto& spec : injector_->poll_window(op, j)) {
    apply_storage_fault(spec, j);
  }
}

namespace {
// Default block targets when a spec leaves them unspecified. Computing
// errors corrupt an *output* block of the operation; storage errors
// corrupt an *input* block it is about to read.
BlockId default_target(const fault::FaultSpec& spec, int j, int nb) {
  int bi = spec.block_row;
  int bk = spec.block_col;
  const bool output = spec.type == fault::FaultType::Computing;
  if (bk < 0) {
    switch (spec.op) {
      case fault::Op::Syrk:
      case fault::Op::Gemm: bk = output ? j : std::max(0, j - 1); break;
      case fault::Op::Potf2:
      case fault::Op::Trsm: bk = j; break;
    }
  }
  if (bi < 0) {
    switch (spec.op) {
      case fault::Op::Syrk:
      case fault::Op::Potf2: bi = j; break;
      case fault::Op::Gemm:
      case fault::Op::Trsm: bi = std::min(j + 1, nb - 1); break;
    }
  }
  return {bi, bk};
}
}  // namespace

void Run::apply_storage_fault(const fault::FaultSpec& spec, int j) {
  if (!m_.numeric()) return;
  const auto [bi, bk] = default_target(spec, j, nb_);
  FTLA_CHECK(bi >= 0 && bi < nb_ && bk >= 0 && bk < nb_);
  if (spec.target_checksum && ft_) {
    const int row = spec.elem_row & 1;
    const int col = off(bk) + std::min(spec.elem_col, bs(bk) - 1);
    double* p = placement_ == UpdatePlacement::Cpu
                    ? &h_chk_(2 * bi + row, col)
                    : d_chk_.data() +
                          static_cast<std::int64_t>(col) * (2 * nb_) +
                          2 * bi + row;
    const double old_value = *p;
    for (int bit : spec.bits) *p = flip_bit(*p, bit);
    injector_->record(spec, old_value, *p, 2 * bi + row, col);
    return;
  }
  const int er = std::min(spec.elem_row, bs(bi) - 1);
  const int ec = std::min(spec.elem_col, bs(bk) - 1);
  const int grow = off(bi) + er;
  const int gcol = off(bk) + ec;
  double* p = d_a_.data() + static_cast<std::int64_t>(gcol) * n_ + grow;
  const double old_value = *p;
  for (int bit : spec.bits) *p = flip_bit(*p, bit);
  injector_->record(spec, old_value, *p, grow, gcol);
}

void Run::apply_computing_fault(const fault::FaultSpec& spec, int j) {
  if (!m_.numeric()) return;
  const auto [bi, bk] = default_target(spec, j, nb_);
  FTLA_CHECK(bi >= 0 && bi < nb_ && bk >= 0 && bk < nb_);
  const int er = std::min(spec.elem_row, bs(bi) - 1);
  const int ec = std::min(spec.elem_col, bs(bk) - 1);
  const int grow = off(bi) + er;
  const int gcol = off(bk) + ec;
  double* p = d_a_.data() + static_cast<std::int64_t>(gcol) * n_ + grow;
  const double old_value = *p;
  *p = old_value + spec.magnitude * std::max(1.0, std::abs(old_value));
  injector_->record(spec, old_value, *p, grow, gcol);
}

// ----------------------------------------------------------------------
// One outer iteration of Algorithm 1
// ----------------------------------------------------------------------

void Run::iterate(int j) {
  cur_iter_ = j;
  tel_.begin_iteration(j);
  const int jb = bs(j);
  const int w = off(j);          // decomposed width to the left
  const int below = n_ - off(j) - jb;  // rows below the diagonal block
  const bool enhanced = opt_.variant == Variant::EnhancedOnline;
  const bool online = opt_.variant == Variant::Online;
  const bool verify_this_iter = (j % opt_.verify_interval) == 0;

  fetch_panel_for_cpu_update(j);

  // ---------------- SYRK: A[j,j] -= LC LC^T --------------------------
  hook_storage(fault::Op::Syrk, j);
  if (enhanced) {
    // Inputs of SYRK are always verified (Opt 3 never gates them):
    // an error entering the diagonal block cannot be repaired later.
    std::vector<BlockId> in;
    in.emplace_back(j, j);
    for (int k = 0; k < j; ++k) in.emplace_back(j, k);
    verify_blocks(in, fault::Op::Syrk);
  }
  if (j > 0) {
    // MAGMA calls dsyrk here; we price it as SYRK but update the full
    // square block so the block stays exactly A - LC LC^T and its
    // column checksums remain meaningful for every column.
    const DMat diag = data_block(j, j);
    const DConstMat lc = data_region(off(j), 0, jb, w);
    KernelDesc d{"syrk", KernelClass::Blas3, blas::syrk_flops(jb, w), 0};
    m_.launch(s_compute_, d, [diag, lc] {
      blas::gemm(Trans::No, Trans::Yes, -1.0, lc.view(), lc.view(), 1.0,
                 diag.view());
    });
  }
  hook_computing(fault::Op::Syrk, j);
  chk_update_syrk(j);

  if (online && j > 0) {
    verify_blocks({{j, j}}, fault::Op::Syrk);
  }
  if (enhanced) {
    // Pre-read verification for POTF2: the diagonal block as SYRK left
    // it, immediately before it crosses to the host.
    verify_blocks({{j, j}}, fault::Op::Potf2);
  }

  // ---------------- diagonal block to the host -----------------------
  hook_storage(fault::Op::Potf2, j);
  const bool chk_on_host = placement_ == UpdatePlacement::Cpu;
  {
    // The D2H staging copies are fault-armed only when the arrival check
    // below exists to catch them (otherwise a mid-copy strike would be
    // factored into L and laundered into consistent checksums).
    sim::TransferArmGuard diag_arm(m_, m_.h2d_faults_armed(),
                                   ft_ && opt_.transfer_guard);
    m_.memcpy_d2h_2d(m_.numeric() ? h_diag_.data() : nullptr, b_, d_a_,
                     static_cast<std::int64_t>(off(j)) * n_ + off(j), n_, jb,
                     jb, s_compute_);
    if (ft_ && !chk_on_host) {
      // Checksum rows ride along only because FT is on: Update overhead.
      const obs::PhaseScope chk_phase(tel_.profile(), obs::Phase::Update);
      m_.memcpy_d2h_2d(m_.numeric() ? h_diag_chk_.data() : nullptr,
                       kChecksumRows, d_chk_,
                       static_cast<std::int64_t>(off(j)) * (2 * nb_) + 2 * j,
                       2 * nb_, kChecksumRows, jb, s_compute_);
    }
  }
  const EventId e_diag = m_.record_event(s_compute_);

  // ---------------- GEMM: panel update (async, hides POTF2) ----------
  if (below > 0 && j > 0) {
    hook_storage(fault::Op::Gemm, j);
    if (enhanced && verify_this_iter) {
      std::vector<BlockId> in;
      for (int i = j + 1; i < nb_; ++i) in.emplace_back(i, j);  // B
      for (int k = 0; k < j; ++k) in.emplace_back(j, k);        // C
      for (int i = j + 1; i < nb_; ++i)
        for (int k = 0; k < j; ++k) in.emplace_back(i, k);      // D
      verify_blocks(in, fault::Op::Gemm);
    } else if (enhanced) {
      // Opt 3: GEMM input verification skipped this iteration.
      const std::size_t skipped = static_cast<std::size_t>(nb_ - j - 1) +
                                  static_cast<std::size_t>(j) +
                                  static_cast<std::size_t>(nb_ - j - 1) *
                                      static_cast<std::size_t>(j);
      tel_.verify_skipped(fault::Op::Gemm, skipped, j);
    }
    sim::gpublas::gemm(m_, s_compute_, Trans::No, Trans::Yes, -1.0,
                       data_region(off(j) + jb, 0, below, w),
                       data_region(off(j), 0, jb, w), 1.0,
                       data_region(off(j) + jb, off(j), below, jb));
    hook_computing(fault::Op::Gemm, j);
    chk_update_gemm(j);
    if (online) {
      std::vector<BlockId> outs;
      for (int i = j + 1; i < nb_; ++i) outs.emplace_back(i, j);
      verify_blocks(outs, fault::Op::Gemm);
    }
  }

  // ---------------- POTF2 on the host (overlapped with GEMM) ---------
  m_.sync_event(e_diag);
  if (ft_ && opt_.transfer_guard) {
    // Arrival verification: the diagonal block (and, for device-resident
    // checksums, its checksum rows) just crossed PCIe. A mid-copy strike
    // is invisible to every device-side verification — POTF2 would
    // factor the corrupted block and derive *consistent* checksums from
    // it, i.e. silent corruption. Check the landed data before use; the
    // device copy is overwritten by the factor's return trip either way.
    result_.verified.potf2_blocks += 1;
    tel_.verify_scheduled(fault::Op::Potf2, 1);
    const Tolerance tol = opt_.tolerance;
    KernelDesc vd{"verify_arrival", KernelClass::HostChecksum,
                  blas::gemv_flops(jb, jb) * 2, 0};
    m_.host_compute(vd, [this, j, jb, chk_on_host, tol] {
      auto chk = chk_on_host
                     ? h_chk_block(j, j)
                     : h_diag_chk_.block(0, 0, kChecksumRows, jb);
      const VerifyOutcome out =
          verify_block_host(h_diag_.block(0, 0, jb, jb), chk, tol);
      if (std::getenv("FTLA_CAMPAIGN_DEBUG") != nullptr) {
        std::fprintf(stderr,
                     "arrival-verify j=%d det=%lld corr=%lld rep=%lld "
                     "unc=%d\n",
                     j, static_cast<long long>(out.errors_detected),
                     static_cast<long long>(out.errors_corrected),
                     static_cast<long long>(out.checksum_repairs),
                     out.uncorrectable ? 1 : 0);
      }
      tel_.block_verified(out, fault::Op::Potf2, j, j, j,
                          blas::gemv_flops(jb, jb) * 2, off(j), jb, off(j),
                          jb, 2 * j);
      absorb(out);
    });
  }
  {
    KernelDesc d{"potf2", KernelClass::HostPotf2, blas::potf2_flops(jb), 0};
    m_.host_compute(d, [this, jb] {
      auto blk = h_diag_.block(0, 0, jb, jb);
      blas::potf2(blk);
      // Zero the strict upper triangle so the stored block is exactly L
      // and column checksums cover well-defined contents.
      for (int c = 1; c < jb; ++c)
        for (int r = 0; r < c; ++r) blk(r, c) = 0.0;
    });
  }
  if (ft_) {
    auto chk_rows = [&]() -> MatrixView<double> {
      return chk_on_host ? h_chk_block(j, j)
                         : h_diag_chk_.block(0, 0, kChecksumRows, jb);
    };
    KernelDesc d{"chk_potf2", KernelClass::HostChecksum,
                 2LL * kChecksumRows * jb * jb, 0};
    m_.host_compute(d, [this, jb, chk_rows] {
      potf2_update_checksum(
          ConstMatrixView<double>(h_diag_.block(0, 0, jb, jb)), chk_rows());
    });
    if (online) {
      result_.verified.potf2_blocks += 1;
      tel_.verify_scheduled(fault::Op::Potf2, 1);
      const Tolerance tol = opt_.tolerance;
      KernelDesc vd{"verify_potf2", KernelClass::HostChecksum,
                    blas::gemv_flops(jb, jb) * 2, 0};
      m_.host_compute(vd, [this, j, jb, chk_rows, tol] {
        const VerifyOutcome out =
            verify_block_host(h_diag_.block(0, 0, jb, jb), chk_rows(), tol);
        tel_.block_verified(out, fault::Op::Potf2, j, j, j,
                            blas::gemv_flops(jb, jb) * 2, off(j), jb, off(j),
                            jb, 2 * j);
        absorb(out);
      });
    }
  }
  // ---------------- factor block (and checksums) back to the GPU ------
  m_.memcpy_h2d_2d(d_a_, static_cast<std::int64_t>(off(j)) * n_ + off(j), n_,
                   m_.numeric() ? h_diag_.data() : nullptr, b_, jb, jb,
                   s_compute_);
  if (ft_ && !chk_on_host) {
    const obs::PhaseScope chk_phase(tel_.profile(), obs::Phase::Update);
    m_.memcpy_h2d_2d(d_chk_,
                     static_cast<std::int64_t>(off(j)) * (2 * nb_) + 2 * j,
                     2 * nb_, m_.numeric() ? h_diag_chk_.data() : nullptr,
                     kChecksumRows, kChecksumRows, jb, s_compute_);
  }
  // A computing error in POTF2 corrupts the factor block the GPU now
  // holds (after the transfer, or the copy would mask it).
  hook_computing(fault::Op::Potf2, j);
  const EventId e_l = m_.record_event(s_compute_);

  // ---------------- TRSM: panel solve ---------------------------------
  if (below > 0) {
    hook_storage(fault::Op::Trsm, j);
    if (enhanced) {
      // The factor block is always verified before use (its only
      // consumer is this TRSM); the panel obeys the K interval.
      std::vector<BlockId> in;
      in.emplace_back(j, j);
      if (verify_this_iter) {
        for (int i = j + 1; i < nb_; ++i) in.emplace_back(i, j);
      } else {
        tel_.verify_skipped(fault::Op::Trsm,
                            static_cast<std::size_t>(nb_ - j - 1), j);
      }
      verify_blocks(in, fault::Op::Trsm);
    }
    sim::gpublas::trsm(m_, s_compute_, Side::Right, Uplo::Lower, Trans::Yes,
                       Diag::NonUnit, 1.0, data_block(j, j),
                       data_region(off(j) + jb, off(j), below, jb));
    hook_computing(fault::Op::Trsm, j);
    chk_update_trsm(j, e_l);
    if (online) {
      std::vector<BlockId> outs;
      for (int i = j + 1; i < nb_; ++i) outs.emplace_back(i, j);
      verify_blocks(outs, fault::Op::Trsm);
    }
  } else if (ft_ && opt_.transfer_guard) {
    // Last block column: no TRSM re-reads the factor block, so its
    // return H2D copy is the one transfer nothing downstream would
    // verify. One device-side check closes the window.
    verify_blocks({{j, j}}, fault::Op::Trsm);
  }

  // Row panel j+1 is final now; start moving it to the host so the next
  // iteration's CPU checksum updates never wait on PCIe.
  fetch_panel_for_cpu_update(j + 1);
}

void Run::offline_final_verify() {
  cur_iter_ = -1;  // telemetry: the sweep belongs to no outer iteration
  tel_.begin_iteration(-1);
  // Huang & Abraham: one verification sweep over the finished factor.
  // Any anomaly triggers a full re-run — an offline scheme cannot tell
  // whether a detected error propagated before the sweep, so correcting
  // in place would risk silently keeping polluted blocks.
  const int detected_before = result_.errors_detected;
  const int repairs_before = result_.checksum_repairs;
  std::vector<BlockId> all;
  for (int k = 0; k < nb_; ++k)
    for (int i = k; i < nb_; ++i) all.emplace_back(i, k);
  verify_blocks(all, fault::Op::Gemm);
  m_.sync_all();
  if (result_.errors_detected != detected_before ||
      result_.checksum_repairs != repairs_before) {
    throw UnrecoverableCorruptionError(
        "offline sweep found corruption in the finished factor");
  }
}

// ----------------------------------------------------------------------
// Task-graph (DAG) runtime path (docs/runtime.md)
//
// The graph is built in exactly the order the bulk path issues its
// machine operations, every task carries its data footprint, and all
// inferred edges point from earlier to later tasks — so the executor's
// deterministic (priority, insertion) schedule issues tasks in bulk
// program order and the numeric results (and fault-hook firing points)
// are bit-identical to Bulk by construction. Only the *virtual-time*
// placement differs: instead of the bulk barriers (every verification
// batch fences all prior compute), each task waits for its true
// dependencies, so iteration j's trailing update overlaps iteration
// j+1's panel work and verify tasks hide in compute/transfer slack.
// ----------------------------------------------------------------------

std::vector<StreamId> Run::dag_streams() const {
  std::vector<StreamId> streams{s_compute_};
  if (ft_) {
    streams.push_back(s_chk_);
    streams.push_back(s_xfer_);
    streams.insert(streams.end(), s_recalc_.begin(), s_recalc_.end());
  } else if (s_xfer_ != s_compute_) {
    streams.push_back(s_xfer_);
  }
  return streams;
}

void Run::dag_hook(runtime::TaskGraph& g, const char* name, int iter,
                   std::function<void()> fn) {
  // Fault hooks consume injector state at a fixed program point; they
  // issue no machine work, so an empty footprint keeps them out of the
  // dependency structure while insertion order fixes *when* they fire.
  if (injector_ == nullptr) return;
  runtime::TaskOptions opts;
  opts.phase = obs::Phase::Base;
  opts.iteration = iter;
  opts.where = runtime::Where::Inline;
  g.add_task(name, {},
             [fn = std::move(fn)](const runtime::TaskContext&) { fn(); },
             opts);
}

void Run::dag_verify(runtime::TaskGraph& g, int bi, int bk, fault::Op attr,
                     int iter) {
  if (!ft_) return;
  // Counter bumps happen at graph-build time — the bulk path also counts
  // at issue time, and the metric totals are what the conformance tests
  // compare.
  switch (attr) {
    case fault::Op::Potf2: result_.verified.potf2_blocks += 1; break;
    case fault::Op::Trsm: result_.verified.trsm_blocks += 1; break;
    case fault::Op::Syrk: result_.verified.syrk_blocks += 1; break;
    case fault::Op::Gemm: result_.verified.gemm_blocks += 1; break;
  }
  tel_.verify_scheduled(attr, 1);
  const std::int64_t nslots = scratch_capacity_cols_ / b_;
  const int slot = static_cast<int>(dag_slot_++ % nslots);
  const std::int64_t col = static_cast<std::int64_t>(slot) * b_;
  runtime::TaskOptions opts;
  opts.phase = obs::Phase::Verify;
  opts.iteration = iter;
  g.add_task(
      "verify",
      {runtime::rw(dtile(bi, bk)), runtime::rw(ctile(bi, bk)),
       runtime::write(stile(slot))},
      [this, bi, bk, attr, col, slot, iter](const runtime::TaskContext& c) {
        c.tiles.rw(dtile(bi, bk));
        c.tiles.rw(ctile(bi, bk));
        c.tiles.write(stile(slot));
        issue_block_verify(c.stream, bi, bk, attr, col, iter);
      },
      opts);
}

void Run::dag_encode(runtime::TaskGraph& g) {
  runtime::TaskOptions opts;
  opts.phase = obs::Phase::Encode;
  for (int k = 0; k < nb_; ++k) {
    for (int i = k; i < nb_; ++i) {
      const DMat blk = data_block(i, k);
      const DMat chk = chk_block(i, k);
      g.add_task("encode",
                 {runtime::read(dtile(i, k)), runtime::write(ctile(i, k))},
                 [this, blk, chk, i, k](const runtime::TaskContext& c) {
                   c.tiles.read(dtile(i, k));
                   c.tiles.write(ctile(i, k));
                   KernelDesc d{"encode", KernelClass::Blas2,
                                blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
                   m_.launch(c.stream, d, [blk, chk] {
                     encode_block(ConstMatrixView<double>(blk.view()),
                                  chk.view());
                   });
                 },
                 opts);
    }
  }
}

void Run::dag_iteration(runtime::TaskGraph& g, int j) {
  const int jb = bs(j);
  const int w = off(j);                // decomposed width to the left
  const int below = n_ - off(j) - jb;  // rows below the diagonal block
  const bool enhanced = opt_.variant == Variant::EnhancedOnline;
  const bool online = opt_.variant == Variant::Online;
  const bool verify_this_iter = (j % opt_.verify_interval) == 0;

  runtime::TaskOptions base;
  base.phase = obs::Phase::Base;
  base.iteration = j;
  runtime::TaskOptions update = base;
  update.phase = obs::Phase::Update;
  runtime::TaskOptions host = base;
  host.phase = obs::Phase::Base;
  host.where = runtime::Where::Host;

  // ---------------- SYRK: A[j,j] -= LC LC^T --------------------------
  dag_hook(g, "hook_storage_syrk", j,
           [this, j] { hook_storage(fault::Op::Syrk, j); });
  if (enhanced) {
    // SYRK inputs are always verified (Opt 3 never gates them). Column
    // j was untouched since encode, so these verify tasks depend only
    // on the encode tasks and park arbitrarily early.
    dag_verify(g, j, j, fault::Op::Syrk, j);
    for (int k = 0; k < j; ++k) dag_verify(g, j, k, fault::Op::Syrk, j);
  }
  if (j > 0) {
    std::vector<runtime::Footprint> fp;
    for (int k = 0; k < j; ++k) fp.push_back(runtime::read(dtile(j, k)));
    fp.push_back(runtime::rw(dtile(j, j)));
    g.add_task("syrk", std::move(fp),
               [this, j, jb, w](const runtime::TaskContext& c) {
                 for (int k = 0; k < j; ++k) c.tiles.read(dtile(j, k));
                 c.tiles.rw(dtile(j, j));
                 const DMat diag = data_block(j, j);
                 const DConstMat lc = data_region(off(j), 0, jb, w);
                 KernelDesc d{"syrk", KernelClass::Blas3,
                              blas::syrk_flops(jb, w), 0};
                 m_.launch(c.stream, d, [diag, lc] {
                   blas::gemm(Trans::No, Trans::Yes, -1.0, lc.view(),
                              lc.view(), 1.0, diag.view());
                 });
               },
               base);
  }
  dag_hook(g, "hook_computing_syrk", j,
           [this, j] { hook_computing(fault::Op::Syrk, j); });
  if (ft_ && j > 0) {
    std::vector<runtime::Footprint> fp;
    for (int k = 0; k < j; ++k) {
      fp.push_back(runtime::read(ctile(j, k)));
      fp.push_back(runtime::read(dtile(j, k)));
    }
    fp.push_back(runtime::rw(ctile(j, j)));
    g.add_task("chk_syrk", std::move(fp),
               [this, j, jb, w](const runtime::TaskContext& c) {
                 for (int k = 0; k < j; ++k) {
                   c.tiles.read(ctile(j, k));
                   c.tiles.read(dtile(j, k));
                 }
                 c.tiles.rw(ctile(j, j));
                 sim::gpublas::gemm(m_, c.stream, Trans::No, Trans::Yes,
                                    -1.0, chk_strip(j, j + 1, 0, w),
                                    data_region(off(j), 0, jb, w), 1.0,
                                    chk_block(j, j),
                                    KernelClass::Blas3Skinny);
               },
               update);
  }
  if (online && j > 0) dag_verify(g, j, j, fault::Op::Syrk, j);
  if (enhanced) dag_verify(g, j, j, fault::Op::Potf2, j);

  // ---------------- diagonal block to the host -----------------------
  dag_hook(g, "hook_storage_potf2", j,
           [this, j] { hook_storage(fault::Op::Potf2, j); });
  {
    std::vector<runtime::Footprint> fp{runtime::read(dtile(j, j)),
                                       runtime::write(htile())};
    if (ft_) fp.push_back(runtime::read(ctile(j, j)));
    g.add_task(
        "d2h_diag", std::move(fp),
        [this, j, jb](const runtime::TaskContext& c) {
          c.tiles.read(dtile(j, j));
          c.tiles.write(htile());
          if (ft_) c.tiles.read(ctile(j, j));
          sim::TransferArmGuard diag_arm(m_, m_.h2d_faults_armed(),
                                         ft_ && opt_.transfer_guard);
          m_.memcpy_d2h_2d(m_.numeric() ? h_diag_.data() : nullptr, b_, d_a_,
                           static_cast<std::int64_t>(off(j)) * n_ + off(j),
                           n_, jb, jb, c.stream);
          if (ft_) {
            const obs::PhaseScope chk_phase(tel_.profile(),
                                            obs::Phase::Update);
            m_.memcpy_d2h_2d(
                m_.numeric() ? h_diag_chk_.data() : nullptr, kChecksumRows,
                d_chk_,
                static_cast<std::int64_t>(off(j)) * (2 * nb_) + 2 * j,
                2 * nb_, kChecksumRows, jb, c.stream);
          }
        },
        base);
  }

  // ---------------- GEMM: panel update -------------------------------
  // Built before the host tasks, as in bulk: it has no dependency on
  // POTF2 (disjoint footprints), so it runs under the host section and
  // — unlike bulk, which serializes on the compute stream — also
  // alongside the *next* iteration's SYRK.
  if (below > 0 && j > 0) {
    dag_hook(g, "hook_storage_gemm", j,
             [this, j] { hook_storage(fault::Op::Gemm, j); });
    if (enhanced && verify_this_iter) {
      for (int i = j + 1; i < nb_; ++i)
        dag_verify(g, i, j, fault::Op::Gemm, j);                       // B
      for (int k = 0; k < j; ++k) dag_verify(g, j, k, fault::Op::Gemm, j);
      for (int i = j + 1; i < nb_; ++i)
        for (int k = 0; k < j; ++k)
          dag_verify(g, i, k, fault::Op::Gemm, j);                     // D
    } else if (enhanced) {
      const std::size_t skipped = static_cast<std::size_t>(nb_ - j - 1) +
                                  static_cast<std::size_t>(j) +
                                  static_cast<std::size_t>(nb_ - j - 1) *
                                      static_cast<std::size_t>(j);
      tel_.verify_skipped(fault::Op::Gemm, skipped, j);
    }
    {
      std::vector<runtime::Footprint> fp;
      for (int i = j + 1; i < nb_; ++i)
        for (int k = 0; k < j; ++k) fp.push_back(runtime::read(dtile(i, k)));
      for (int k = 0; k < j; ++k) fp.push_back(runtime::read(dtile(j, k)));
      for (int i = j + 1; i < nb_; ++i)
        fp.push_back(runtime::rw(dtile(i, j)));
      g.add_task("gemm", std::move(fp),
                 [this, j, jb, w, below](const runtime::TaskContext& c) {
                   for (int i = j + 1; i < nb_; ++i)
                     for (int k = 0; k < j; ++k) c.tiles.read(dtile(i, k));
                   for (int k = 0; k < j; ++k) c.tiles.read(dtile(j, k));
                   for (int i = j + 1; i < nb_; ++i) c.tiles.rw(dtile(i, j));
                   sim::gpublas::gemm(m_, c.stream, Trans::No, Trans::Yes,
                                      -1.0,
                                      data_region(off(j) + jb, 0, below, w),
                                      data_region(off(j), 0, jb, w), 1.0,
                                      data_region(off(j) + jb, off(j), below,
                                                  jb));
                 },
                 base);
    }
    dag_hook(g, "hook_computing_gemm", j,
             [this, j] { hook_computing(fault::Op::Gemm, j); });
    if (ft_ && j + 1 < nb_) {
      std::vector<runtime::Footprint> fp;
      for (int i = j + 1; i < nb_; ++i)
        for (int k = 0; k < j; ++k) fp.push_back(runtime::read(ctile(i, k)));
      for (int k = 0; k < j; ++k) fp.push_back(runtime::read(dtile(j, k)));
      for (int i = j + 1; i < nb_; ++i)
        fp.push_back(runtime::rw(ctile(i, j)));
      g.add_task("chk_gemm", std::move(fp),
                 [this, j, jb, w](const runtime::TaskContext& c) {
                   for (int i = j + 1; i < nb_; ++i)
                     for (int k = 0; k < j; ++k) c.tiles.read(ctile(i, k));
                   for (int k = 0; k < j; ++k) c.tiles.read(dtile(j, k));
                   for (int i = j + 1; i < nb_; ++i) c.tiles.rw(ctile(i, j));
                   sim::gpublas::gemm(m_, c.stream, Trans::No, Trans::Yes,
                                      -1.0, chk_strip(j + 1, nb_, 0, w),
                                      data_region(off(j), 0, jb, w), 1.0,
                                      chk_strip(j + 1, nb_, off(j), jb),
                                      KernelClass::Blas3Skinny);
                 },
                 update);
    }
    if (online) {
      for (int i = j + 1; i < nb_; ++i)
        dag_verify(g, i, j, fault::Op::Gemm, j);
    }
  }

  // ---------------- POTF2 on the host --------------------------------
  if (ft_ && opt_.transfer_guard) {
    result_.verified.potf2_blocks += 1;
    tel_.verify_scheduled(fault::Op::Potf2, 1);
    g.add_task(
        "verify_arrival", {runtime::rw(htile())},
        [this, j, jb](const runtime::TaskContext& c) {
          c.tiles.rw(htile());
          const Tolerance tol = opt_.tolerance;
          KernelDesc vd{"verify_arrival", KernelClass::HostChecksum,
                        blas::gemv_flops(jb, jb) * 2, 0};
          m_.host_compute(vd, [this, j, jb, tol] {
            const VerifyOutcome out = verify_block_host(
                h_diag_.block(0, 0, jb, jb),
                h_diag_chk_.block(0, 0, kChecksumRows, jb), tol);
            if (std::getenv("FTLA_CAMPAIGN_DEBUG") != nullptr) {
              std::fprintf(stderr,
                           "arrival-verify j=%d det=%lld corr=%lld rep=%lld "
                           "unc=%d\n",
                           j, static_cast<long long>(out.errors_detected),
                           static_cast<long long>(out.errors_corrected),
                           static_cast<long long>(out.checksum_repairs),
                           out.uncorrectable ? 1 : 0);
            }
            tel_.block_verified(out, fault::Op::Potf2, j, j, j,
                                blas::gemv_flops(jb, jb) * 2, off(j), jb,
                                off(j), jb, 2 * j);
            absorb(out);
          });
        },
        host);
  }
  g.add_task("potf2", {runtime::rw(htile())},
             [this, jb](const runtime::TaskContext& tc) {
               tc.tiles.rw(htile());
               KernelDesc d{"potf2", KernelClass::HostPotf2,
                            blas::potf2_flops(jb), 0};
               m_.host_compute(d, [this, jb] {
                 auto blk = h_diag_.block(0, 0, jb, jb);
                 blas::potf2(blk);
                 // Zero the strict upper triangle so the stored block is
                 // exactly L and column checksums cover well-defined
                 // contents.
                 for (int c = 1; c < jb; ++c)
                   for (int r = 0; r < c; ++r) blk(r, c) = 0.0;
               });
             },
             host);
  if (ft_) {
    g.add_task("chk_potf2", {runtime::rw(htile())},
               [this, jb](const runtime::TaskContext& c) {
                 c.tiles.rw(htile());
                 KernelDesc d{"chk_potf2", KernelClass::HostChecksum,
                              2LL * kChecksumRows * jb * jb, 0};
                 m_.host_compute(d, [this, jb] {
                   potf2_update_checksum(
                       ConstMatrixView<double>(h_diag_.block(0, 0, jb, jb)),
                       h_diag_chk_.block(0, 0, kChecksumRows, jb));
                 });
               },
               host);
    if (online) {
      result_.verified.potf2_blocks += 1;
      tel_.verify_scheduled(fault::Op::Potf2, 1);
      g.add_task("verify_potf2", {runtime::rw(htile())},
                 [this, j, jb](const runtime::TaskContext& c) {
                   c.tiles.rw(htile());
                   const Tolerance tol = opt_.tolerance;
                   KernelDesc vd{"verify_potf2", KernelClass::HostChecksum,
                                 blas::gemv_flops(jb, jb) * 2, 0};
                   m_.host_compute(vd, [this, j, jb, tol] {
                     const VerifyOutcome out = verify_block_host(
                         h_diag_.block(0, 0, jb, jb),
                         h_diag_chk_.block(0, 0, kChecksumRows, jb), tol);
                     tel_.block_verified(out, fault::Op::Potf2, j, j, j,
                                         blas::gemv_flops(jb, jb) * 2,
                                         off(j), jb, off(j), jb, 2 * j);
                     absorb(out);
                   });
                 },
                 host);
    }
  }

  // ---------------- factor (and checksums) back to the GPU ------------
  {
    std::vector<runtime::Footprint> fp{runtime::read(htile()),
                                       runtime::write(dtile(j, j))};
    if (ft_) fp.push_back(runtime::write(ctile(j, j)));
    g.add_task(
        "h2d_factor", std::move(fp),
        [this, j, jb](const runtime::TaskContext& c) {
          c.tiles.read(htile());
          c.tiles.write(dtile(j, j));
          if (ft_) c.tiles.write(ctile(j, j));
          m_.memcpy_h2d_2d(d_a_,
                           static_cast<std::int64_t>(off(j)) * n_ + off(j),
                           n_, m_.numeric() ? h_diag_.data() : nullptr, b_,
                           jb, jb, c.stream);
          if (ft_) {
            const obs::PhaseScope chk_phase(tel_.profile(),
                                            obs::Phase::Update);
            m_.memcpy_h2d_2d(
                d_chk_,
                static_cast<std::int64_t>(off(j)) * (2 * nb_) + 2 * j,
                2 * nb_, m_.numeric() ? h_diag_chk_.data() : nullptr,
                kChecksumRows, kChecksumRows, jb, c.stream);
          }
        },
        base);
  }
  dag_hook(g, "hook_computing_potf2", j,
           [this, j] { hook_computing(fault::Op::Potf2, j); });

  // ---------------- TRSM: panel solve ---------------------------------
  if (below > 0) {
    dag_hook(g, "hook_storage_trsm", j,
             [this, j] { hook_storage(fault::Op::Trsm, j); });
    if (enhanced) {
      // The factor block is always verified before use; the panel obeys
      // the K interval.
      dag_verify(g, j, j, fault::Op::Trsm, j);
      if (verify_this_iter) {
        for (int i = j + 1; i < nb_; ++i)
          dag_verify(g, i, j, fault::Op::Trsm, j);
      } else {
        tel_.verify_skipped(fault::Op::Trsm,
                            static_cast<std::size_t>(nb_ - j - 1), j);
      }
    }
    {
      std::vector<runtime::Footprint> fp{runtime::read(dtile(j, j))};
      for (int i = j + 1; i < nb_; ++i)
        fp.push_back(runtime::rw(dtile(i, j)));
      g.add_task("trsm", std::move(fp),
                 [this, j, jb, below](const runtime::TaskContext& c) {
                   c.tiles.read(dtile(j, j));
                   for (int i = j + 1; i < nb_; ++i) c.tiles.rw(dtile(i, j));
                   sim::gpublas::trsm(m_, c.stream, Side::Right, Uplo::Lower,
                                      Trans::Yes, Diag::NonUnit, 1.0,
                                      data_block(j, j),
                                      data_region(off(j) + jb, off(j), below,
                                                  jb));
                 },
                 base);
    }
    dag_hook(g, "hook_computing_trsm", j,
             [this, j] { hook_computing(fault::Op::Trsm, j); });
    if (ft_ && j + 1 < nb_) {
      std::vector<runtime::Footprint> fp{runtime::read(dtile(j, j))};
      for (int i = j + 1; i < nb_; ++i)
        fp.push_back(runtime::rw(ctile(i, j)));
      g.add_task("chk_trsm", std::move(fp),
                 [this, j, jb](const runtime::TaskContext& c) {
                   c.tiles.read(dtile(j, j));
                   for (int i = j + 1; i < nb_; ++i) c.tiles.rw(ctile(i, j));
                   sim::gpublas::trsm(m_, c.stream, Side::Right, Uplo::Lower,
                                      Trans::Yes, Diag::NonUnit, 1.0,
                                      data_block(j, j),
                                      chk_strip(j + 1, nb_, off(j), jb),
                                      KernelClass::Blas3Skinny);
                 },
                 update);
    }
    if (online) {
      for (int i = j + 1; i < nb_; ++i)
        dag_verify(g, i, j, fault::Op::Trsm, j);
    }
  } else if (ft_ && opt_.transfer_guard) {
    // Last block column: no TRSM re-reads the factor block; one
    // device-side check closes the H2D return window (same as bulk).
    dag_verify(g, j, j, fault::Op::Trsm, j);
  }
}

void Run::run_once_dag() {
  panel_iter_[0] = panel_iter_[1] = -1;
  dag_slot_ = 0;
  runtime::TaskGraph g;
  if (ft_) dag_encode(g);
  for (int j = 0; j < nb_; ++j) dag_iteration(g, j);
  if (ft_ && opt_.transfer_guard && opt_.variant != Variant::Offline) {
    // Output-at-rest end sweep (see the bulk path for the rationale).
    // Each block's verify depends only on that block's last writer, so
    // retired columns are swept while the factorization tail still runs.
    cur_iter_ = -1;
    for (int k = 0; k < nb_; ++k)
      for (int i = k; i < nb_; ++i) dag_verify(g, i, k, fault::Op::Gemm, -1);
  }
  // Opt-in dynamic footprint sanitizer (docs/static-analysis.md): the
  // executor hands every body a recording TileAccessor, and any access
  // outside a declared footprint — or unordered by happens-before —
  // fails the run with the tracker's report.
  runtime::AccessTracker tracker;
  const bool sanitize = runtime::sanitize_env_enabled();
  if (sanitize) g.set_access_tracker(&tracker);
  // Same transfer-fault arming as the bulk path: H2D copies inside the
  // run are armed; D2H staging copies arm individually (transfer_guard).
  sim::TransferArmGuard arm(m_, /*h2d=*/true, /*d2h=*/false);
  runtime::StreamRunOptions ropts;
  ropts.streams = dag_streams();
  ropts.profile = tel_.profile();
  ropts.metrics = opt_.metrics;
  ropts.schedule_seed = opt_.dag_schedule_seed;
  if (trace_ != nullptr) {
    // DAG task spans hang off the current pass span, ids derived from
    // node ids — the same graph traces to the same ids at any schedule.
    ropts.trace = trace_;
    ropts.trace_ctx = opt_.trace_ctx;
    ropts.trace_ctx.span_id = trace_pass_;
  }
  runtime::run_on_streams(g, m_, ropts);
  if (opt_.variant == Variant::Offline) {
    // The offline sweep reuses the bulk batch machinery; align the host
    // clock with all graph work first so its fences see the full run.
    m_.sync_all();
    offline_final_verify();
  }
  m_.sync_all();
  if (sanitize && !tracker.clean()) {
    throw Error("cholesky DAG failed footprint sanitizing\n" +
                tracker.report(g));
  }
}

}  // namespace

CholeskyResult cholesky(Machine& machine, Matrix<double>* a, int n,
                        const CholeskyOptions& options,
                        fault::Injector* injector) {
  Run run(machine, a, n, options, injector);
  return run.execute();
}

CholeskyResult cholesky_solve(Machine& machine, Matrix<double>* a,
                              MatrixView<double> b,
                              const CholeskyOptions& options,
                              fault::Injector* injector) {
  FTLA_CHECK_MSG(machine.numeric(), "cholesky_solve needs Numeric mode");
  FTLA_CHECK(a != nullptr && a->rows() == b.rows());
  CholeskyResult res = cholesky(machine, a, a->rows(), options, injector);
  if (res.success) {
    blas::potrs(ConstMatrixView<double>(a->view()), b);
  }
  return res;
}

}  // namespace ftla::abft
