// Checksum codec for block-level ABFT (paper §IV).
//
// Every B x B matrix block carries two weighted column checksums
//   chk1 = v1^T A with v1 = [1, 1, ..., 1]
//   chk2 = v2^T A with v2 = [1, 2, ..., B]
// stored as a 2 x B row pair. Together they detect, locate and correct
// one erroneous element per block column:
//   delta1 = chk1' - chk1 = e        (the error value)
//   delta2 = chk2' - chk2 = r * e    (r = 1-based row of the error)
// A corrupted checksum row itself is recognizable (delta pattern cannot
// come from a single data error) and is repaired by re-encoding.
#pragma once

#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace ftla::abft {

/// Number of checksum rows per block row (two weight vectors).
inline constexpr int kChecksumRows = 2;

/// chk(2 x cols) := [v1^T; v2^T] * a. Weights depend on a.rows().
void encode_block(ConstMatrixView<double> a, MatrixView<double> chk);

/// Applies the POTF2 checksum transform (paper Algorithm 2): given the
/// factor L of a diagonal block and the checksums of the *pre-factor*
/// block, rewrites chk in place into the checksums of L (lower triangle,
/// zeros above the diagonal).
void potf2_update_checksum(ConstMatrixView<double> l, MatrixView<double> chk);

/// Location of one corrected element.
struct Correction {
  int row = 0;        ///< 0-based within the block
  int col = 0;
  double old_value = 0.0;
  double new_value = 0.0;
};

/// Outcome of verifying one block.
struct VerifyOutcome {
  int errors_detected = 0;     ///< block-columns with a mismatch
  int errors_corrected = 0;    ///< data elements repaired
  int checksum_repairs = 0;    ///< corrupted checksum columns re-encoded
  bool uncorrectable = false;  ///< >1 error in a column / inconsistent
  std::vector<Correction> corrections;

  [[nodiscard]] bool clean() const noexcept {
    return errors_detected == 0 && checksum_repairs == 0 && !uncorrectable;
  }
};

/// Verification tolerance: a column flags an error when
/// |recalculated - stored| > tol_rel * scale, with scale derived from the
/// checksum magnitudes (never below `floor`).
struct Tolerance {
  double rel = 1e-8;
  double floor = 1e-6;
  [[nodiscard]] double threshold(double scale) const {
    return rel * (scale < floor ? floor : scale);
  }
};

/// Compares the stored checksums `chk` against freshly recalculated
/// checksums `recalc` (both 2 x cols) and repairs `a` / `chk` in place.
/// Pure logic, no allocation beyond the corrections list: usable from
/// both host code and simulated-device kernel bodies.
VerifyOutcome verify_block(MatrixView<double> a, MatrixView<double> chk,
                           ConstMatrixView<double> recalc,
                           const Tolerance& tol);

/// Convenience: recalculates checksums of `a` into a scratch matrix and
/// runs verify_block (host-side verification used in tests/examples).
VerifyOutcome verify_block_host(MatrixView<double> a,
                                MatrixView<double> chk, const Tolerance& tol);

// --- Row-checksum variants ---------------------------------------------
//
// The paper (§IV-A) notes that two *row* checksums work symmetrically to
// two column checksums. Row checksums are what protects the U factor in
// the LU extension: a row checksum column transforms like an extra
// matrix column under left-multiplication (U' = L^{-1} A implies
// rchk(U') = L^{-1} rchk(A)), which column checksums cannot do.

/// chk (rows x 2) := a * [w1 w2] with w1 = [1..1]^T, w2 = [1..cols]^T.
void encode_block_rows(ConstMatrixView<double> a, MatrixView<double> chk);

/// Row-checksum verification: detects, locates (column = delta2/delta1)
/// and corrects one error per block row; repairs corrupted checksum
/// columns. Mirror image of verify_block.
VerifyOutcome verify_block_rows(MatrixView<double> a,
                                MatrixView<double> chk,
                                ConstMatrixView<double> recalc,
                                const Tolerance& tol);

VerifyOutcome verify_block_rows_host(MatrixView<double> a,
                                     MatrixView<double> chk,
                                     const Tolerance& tol);

}  // namespace ftla::abft
