// Enhanced Online-ABFT LU factorization (extension).
//
// The paper's scheme is presented for Cholesky; its related work
// (FT-ScaLAPACK, online LU correction) applies the same machinery to LU.
// This module carries the pre-read-verification idea to a right-looking
// blocked LU without pivoting on the same simulated heterogeneous node:
//
//   for each block column j:
//     [->]  fetch the panel A[j:, j] to the host
//     [CPU] GETF2 (no pivoting) on the panel; re-encode its column
//           checksums from the freshly computed factors
//     [<-]  panel + checksums back to the GPU
//     [GPU] TRSM   U[j, j+1:] := L[j,j]^{-1} A[j, j+1:]
//     [GPU] GEMM   A[j+1:, j+1:] -= L[j+1:, j] U[j, j+1:]
//
// Checksum scheme (the LU twist): the L factor and the trailing matrix
// are protected by *column* checksums exactly as in the paper, but the
// U factor needs *row* checksums — a row checksum transforms like an
// extra matrix column under TRSM's left-multiplication
// (rchk(L^{-1}A) = L^{-1} rchk(A)), which column checksums cannot
// follow. Trailing blocks carry both; a block drops the side that stops
// being maintained once it becomes part of L or U.
//
// Unlike the inner-product Cholesky, right-looking LU never re-reads
// finished factor blocks, so pre-read verification alone cannot catch
// storage errors that strike them afterwards; the driver therefore ends
// with one verification sweep over the finished factor (column
// checksums for L, row checksums for U).
//
// Pivoting is intentionally omitted: row exchanges break the weighted
// column-checksum relation, and no-pivot LU is backward stable for the
// diagonally dominant matrices this driver targets (checked: a zero or
// non-finite pivot raises the fail-stop channel).
#pragma once

#include "abft/options.hpp"
#include "common/matrix.hpp"
#include "fault/fault.hpp"
#include "sim/machine.hpp"

namespace ftla::abft {

struct LuOptions {
  /// NoFt or EnhancedOnline (the extension supports exactly these two).
  Variant variant = Variant::EnhancedOnline;
  int block_size = 0;        ///< 0 = machine profile default
  int verify_interval = 1;   ///< Opt 3 on the trailing-update inputs
  bool concurrent_recalc = true;  ///< Opt 1
  int recalc_streams = 0;
  Tolerance tolerance{};
  int max_reruns = 2;

  /// Execution structure — see CholeskyOptions::runtime.
  RuntimeMode runtime = RuntimeMode::Bulk;
  /// Seeded random DAG issue order — see CholeskyOptions.
  std::uint64_t dag_schedule_seed = 0;

  /// Observability hooks (optional, not owned) — see CholeskyOptions.
  obs::EventSink* event_sink = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::SpanStore* profile = nullptr;
  obs::TimeSeriesStore* timeseries = nullptr;
};

/// Factorizes `*a` in place into packed L\U (unit-lower L below the
/// diagonal, U on and above). Same Numeric/TimingOnly contract as
/// abft::cholesky. Fault hooks: Op::Potf2 = the panel factorization,
/// Op::Trsm = the U row solve, Op::Gemm = the trailing update.
CholeskyResult lu(sim::Machine& machine, Matrix<double>* a, int n,
                  const LuOptions& options,
                  fault::Injector* injector = nullptr);

}  // namespace ftla::abft
