#include "abft/telemetry.hpp"

#include <string>

namespace ftla::abft {

namespace {

/// Metric name for a scheduled-verification counter, one per op; kept in
/// lockstep with VerificationCounters so the export reconciles exactly.
const char* verify_counter_name(fault::Op op) {
  switch (op) {
    case fault::Op::Potf2: return "abft.verify.potf2_blocks";
    case fault::Op::Trsm: return "abft.verify.trsm_blocks";
    case fault::Op::Syrk: return "abft.verify.syrk_blocks";
    case fault::Op::Gemm: return "abft.verify.gemm_blocks";
  }
  return "abft.verify.other_blocks";
}

}  // namespace

Telemetry::Telemetry(sim::Machine& m, obs::EventSink* sink,
                     obs::MetricsRegistry* metrics, fault::Injector* injector,
                     obs::SpanStore* profile,
                     obs::TimeSeriesStore* timeseries)
    : m_(m), sink_(sink), metrics_(metrics), injector_(injector),
      profile_(profile), timeseries_(timeseries) {
  if (injector_ != nullptr && active()) {
    injector_->set_event_sink(sink_);
    injector_->set_clock([&machine = m_] { return machine.host_now(); });
  }
}

void Telemetry::verify_scheduled(fault::Op attr, std::size_t blocks) {
  common::MutexLock lk(mu_);
  if (metrics_ != nullptr && blocks > 0) {
    metrics_->add_counter(verify_counter_name(attr),
                          static_cast<long long>(blocks));
  }
}

void Telemetry::verify_skipped(fault::Op attr, std::size_t blocks,
                               int iteration) {
  if (blocks == 0) return;
  common::MutexLock lk(mu_);
  if (metrics_ != nullptr) {
    metrics_->add_counter("abft.verify.skipped_blocks",
                          static_cast<long long>(blocks));
  }
  if (sink_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::VerifySkip;
    e.time = e.end = m_.host_now();
    e.lane = sim::kHostLane;
    e.name = "verify_skip";
    e.op = fault::to_string(attr);
    e.iteration = iteration;
    e.units = static_cast<int>(blocks);
    sink_->post(e);
  }
}

std::int64_t Telemetry::match_injection(int row0, int rows, int col0,
                                        int cols, int chk_row0) const {
  if (injector_ == nullptr) return -1;
  for (const auto& r : injector_->records()) {
    if (r.detected()) continue;
    const bool col_hit = r.global_col >= col0 && r.global_col < col0 + cols;
    if (!col_hit) continue;
    if (r.spec.target_checksum) {
      if (chk_row0 >= 0 && r.global_row >= chk_row0 &&
          r.global_row < chk_row0 + kChecksumRows) {
        return r.id;
      }
    } else if (r.global_row >= row0 && r.global_row < row0 + rows) {
      return r.id;
    }
  }
  return -1;
}

void Telemetry::block_verified(const VerifyOutcome& out, fault::Op attr,
                               int iteration, int block_row, int block_col,
                               std::int64_t recalc_flops, int row0, int rows,
                               int col0, int cols, int chk_row0) {
  if (!active()) return;
  common::MutexLock lk(mu_);
  const double now = m_.host_now();
  const bool clean = out.clean();
  if (timeseries_ != nullptr) {
    timeseries_->sample_counter("timeseries.abft.verified_blocks", now, 1.0);
    if (!clean) {
      timeseries_->sample_counter("timeseries.abft.errors_detected", now,
                                  static_cast<double>(out.errors_detected));
    }
  }
  if (sink_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::Verification;
    e.time = e.end = now;
    e.lane = sim::kHostLane;
    e.name = "verify";
    e.op = fault::to_string(attr);
    e.iteration = iteration;
    e.block_row = block_row;
    e.block_col = block_col;
    e.pass = clean;
    e.flops = recalc_flops;
    sink_->post(e);
  }
  if (clean) return;

  // A dirty verification: attribute it back to the latent injection whose
  // target element lies inside this block, then report the detection and
  // any repairs with that correlation id so the trace exporter can draw
  // injection -> detection -> correction flow arrows.
  const std::int64_t inj = match_injection(row0, rows, col0, cols, chk_row0);
  double latency = -1.0;
  if (inj >= 0) {
    injector_->mark_detected(inj, now);
    latency = injector_->records()[static_cast<std::size_t>(inj)]
                  .detection_latency();
    if (latency >= 0.0) {
      last_detection_latency_ = latency;
      if (timeseries_ != nullptr) {
        timeseries_->sample_gauge("timeseries.abft.detection_latency_s",
                                  now, latency);
      }
    }
  }
  if (metrics_ != nullptr) {
    metrics_->add_counter("abft.errors_detected", out.errors_detected);
    metrics_->add_counter("abft.errors_corrected", out.errors_corrected);
    metrics_->add_counter("abft.checksum_repairs", out.checksum_repairs);
    if (out.uncorrectable) {
      metrics_->add_counter("abft.uncorrectable_verifications", 1);
    }
    if (inj >= 0) {
      metrics_->add_counter("abft.detections_matched", 1);
      if (latency >= 0.0) {
        metrics_->record_histogram(kDetectionLatencyMetric, latency);
      }
    } else {
      metrics_->add_counter("abft.detections_unmatched", 1);
    }
  }
  if (sink_ == nullptr) return;

  obs::Event d;
  d.kind = obs::EventKind::Detection;
  d.time = d.end = now;
  d.lane = sim::kHostLane;
  d.name = "detection";
  d.op = fault::to_string(attr);
  d.iteration = iteration;
  d.block_row = block_row;
  d.block_col = block_col;
  d.pass = !out.uncorrectable;
  d.units = out.errors_detected;
  d.correlation = inj;
  d.value = latency;
  if (out.uncorrectable) d.detail = "uncorrectable";
  sink_->post(d);

  for (const auto& c : out.corrections) {
    obs::Event e;
    e.kind = obs::EventKind::Correction;
    e.time = e.end = now;
    e.lane = sim::kHostLane;
    e.name = "correction";
    e.op = fault::to_string(attr);
    e.iteration = iteration;
    e.block_row = block_row;
    e.block_col = block_col;
    e.row = row0 + c.row;
    e.col = col0 + c.col;
    e.correlation = inj;
    e.value = c.old_value;
    e.value2 = c.new_value;
    sink_->post(e);
  }
  if (out.checksum_repairs > 0) {
    obs::Event e;
    e.kind = obs::EventKind::ChecksumRepair;
    e.time = e.end = now;
    e.lane = sim::kHostLane;
    e.name = "checksum_repair";
    e.op = fault::to_string(attr);
    e.iteration = iteration;
    e.block_row = block_row;
    e.block_col = block_col;
    e.units = out.checksum_repairs;
    e.correlation = inj;
    sink_->post(e);
  }
}

void Telemetry::placement_decided(UpdatePlacement requested,
                                  UpdatePlacement chosen, double t_pick_gpu_s,
                                  double t_pick_cpu_s) {
  common::MutexLock lk(mu_);
  if (metrics_ != nullptr) {
    metrics_->set_gauge("abft.opt2.t_pick_gpu_s", t_pick_gpu_s);
    metrics_->set_gauge("abft.opt2.t_pick_cpu_s", t_pick_cpu_s);
  }
  if (sink_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::Placement;
    e.time = e.end = m_.host_now();
    e.lane = sim::kHostLane;
    e.name = std::string("placement:") + to_string(chosen);
    e.op = to_string(requested);
    e.value = t_pick_gpu_s;
    e.value2 = t_pick_cpu_s;
    sink_->post(e);
  }
}

void Telemetry::checkpoint_taken(int next_iteration) {
  common::MutexLock lk(mu_);
  if (metrics_ != nullptr) metrics_->add_counter("abft.checkpoints", 1);
  if (sink_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::Checkpoint;
    e.time = e.end = m_.host_now();
    e.lane = sim::kHostLane;
    e.name = "checkpoint";
    e.iteration = next_iteration;
    sink_->post(e);
  }
}

void Telemetry::rollback(int to_iteration) {
  common::MutexLock lk(mu_);
  if (metrics_ != nullptr) metrics_->add_counter("abft.rollbacks", 1);
  if (sink_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::Rollback;
    e.time = e.end = m_.host_now();
    e.lane = sim::kHostLane;
    e.name = "rollback";
    e.iteration = to_iteration;
    e.value = last_detection_latency_;
    sink_->post(e);
  }
}

void Telemetry::rerun(int rerun_count, const char* reason) {
  common::MutexLock lk(mu_);
  if (metrics_ != nullptr) metrics_->add_counter("abft.reruns", 1);
  if (sink_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::Rerun;
    e.time = e.end = m_.host_now();
    e.lane = sim::kHostLane;
    e.name = "rerun";
    e.units = rerun_count;
    if (reason != nullptr) e.detail = reason;
    sink_->post(e);
  }
}

}  // namespace ftla::abft
