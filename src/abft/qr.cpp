#include "abft/qr.hpp"

#include "abft/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "blas/qr.hpp"
#include "blas/types.hpp"
#include "common/error.hpp"
#include "common/fp.hpp"
#include "runtime/executor.hpp"
#include "runtime/sanitizer.hpp"
#include "sim/device_matrix.hpp"
#include "sim/machine.hpp"

namespace ftla::abft {

using sim::DeviceBuffer;
using sim::DMat;
using sim::EventId;
using sim::KernelClass;
using sim::KernelDesc;
using sim::Machine;
using sim::StreamId;

namespace {

using BlockId = std::pair<int, int>;

class QrRun {
 public:
  QrRun(Machine& m, Matrix<double>* a, std::vector<double>* tau, int n,
        const QrOptions& opt, fault::Injector* injector)
      : m_(m), a_(a), tau_(tau), n_(n), opt_(opt), injector_(injector),
        tel_(m, opt.event_sink, opt.metrics, injector, opt.profile,
             opt.timeseries) {
    FTLA_CHECK(n_ > 0);
    FTLA_CHECK_MSG(opt_.variant == Variant::NoFt ||
                       opt_.variant == Variant::EnhancedOnline,
                   "the QR extension implements NoFt and EnhancedOnline");
    if (m_.numeric()) {
      FTLA_CHECK(a_ != nullptr && a_->rows() == n_ && a_->cols() == n_);
      FTLA_CHECK(tau_ != nullptr);
      tau_->assign(static_cast<std::size_t>(n_), 0.0);
    }
    FTLA_CHECK(injector_ == nullptr || m_.numeric());
    b_ = opt_.block_size > 0 ? opt_.block_size
                             : m_.profile().magma_block_size;
    nb_ = (n_ + b_ - 1) / b_;
    ft_ = opt_.variant == Variant::EnhancedOnline;
  }

  CholeskyResult execute();

 private:
  [[nodiscard]] int bs(int i) const { return std::min(b_, n_ - i * b_); }
  [[nodiscard]] int off(int i) const { return i * b_; }

  [[nodiscard]] DMat data_region(int row, int col, int rows, int cols) {
    return DMat{&d_a_, static_cast<std::int64_t>(col) * n_ + row, rows, cols,
                n_};
  }
  [[nodiscard]] DMat data_block(int i, int k) {
    return data_region(off(i), off(k), bs(i), bs(k));
  }
  [[nodiscard]] DMat rchk_block(int i, int k) {
    return DMat{&d_rchk_, static_cast<std::int64_t>(2 * k) * n_ + off(i),
                bs(i), kChecksumRows, n_};
  }
  [[nodiscard]] DMat rchk_strip(int row, int rows, int k0, int k1) {
    return DMat{&d_rchk_, static_cast<std::int64_t>(2 * k0) * n_ + row, rows,
                2 * (k1 - k0), n_};
  }

  void allocate();
  void upload();
  void encode();
  void run_once();
  void iterate(int j);
  void final_sweep();
  void verify_row_blocks(const std::vector<BlockId>& blocks, fault::Op attr);
  /// Recalc + compare launches for one block on one stream. Shared by
  /// the bulk batches and the DAG verify tasks so both runtimes issue
  /// identical kernels.
  void issue_row_verify(StreamId s, int bi, int bk, fault::Op attr,
                        std::int64_t pos, int iter);
  void absorb(const VerifyOutcome& out);
  void hook_storage(fault::Op op, int j);
  void hook_computing(fault::Op op, int j);

  // ---- task-graph (DAG) runtime path (docs/runtime.md) ----
  [[nodiscard]] bool use_dag() const {
    return opt_.runtime == RuntimeMode::Dag;
  }
  void run_once_dag();
  void dag_encode(runtime::TaskGraph& g);
  void dag_iteration(runtime::TaskGraph& g, int j);
  void dag_sweep(runtime::TaskGraph& g);
  void dag_verify(runtime::TaskGraph& g, int bi, int bk, fault::Op attr,
                  int iter);
  void dag_hook(runtime::TaskGraph& g, const char* name, int iter,
                std::function<void()> fn);
  [[nodiscard]] std::vector<StreamId> dag_streams() const;

  /// Tile namespaces for dependency inference: data blocks, row
  /// checksums, the device T factor, host staging, scratch slots.
  enum TileSpace : int {
    kTileData = 0,
    kTileRchk,
    kTileT,
    kTileHost,
    kTileScratch
  };
  [[nodiscard]] static runtime::TileKey dtile(int i, int k) {
    return {kTileData, i, k};
  }
  [[nodiscard]] static runtime::TileKey rctile(int i, int k) {
    return {kTileRchk, i, k};
  }
  [[nodiscard]] static runtime::TileKey ttile() { return {kTileT, 0, 0}; }
  [[nodiscard]] static runtime::TileKey htile() { return {kTileHost, 0, 0}; }
  [[nodiscard]] static runtime::TileKey stile(int slot) {
    return {kTileScratch, slot, 0};
  }
  std::int64_t dag_slot_ = 0;  ///< round-robin scratch-slot cursor

  Machine& m_;
  Matrix<double>* a_;
  std::vector<double>* tau_;
  int n_;
  QrOptions opt_;
  fault::Injector* injector_;
  Telemetry tel_;
  int cur_iter_ = -1;  ///< telemetry iteration; -1 outside the j-loop

  int b_ = 0;
  int nb_ = 0;
  bool ft_ = false;

  DeviceBuffer d_a_;
  DeviceBuffer d_rchk_;  // row checksums, n x 2nb
  DeviceBuffer d_t_;     // the block reflector factor T (b x b)
  DeviceBuffer d_scratch_;
  std::int64_t scratch_capacity_ = 0;

  Matrix<double> pristine_;
  Matrix<double> h_panel_;      // host panel (n x b)
  Matrix<double> h_t_;          // host T (b x b)
  Matrix<double> h_panel_chk_;  // re-encoded panel row checksums (n x 2)
  std::vector<double> h_tau_;

  StreamId s_compute_ = 0;
  StreamId s_chk_ = 0;
  std::vector<StreamId> s_recalc_;

  CholeskyResult result_;
};

CholeskyResult QrRun::execute() {
  allocate();
  upload();
  m_.sync_all();
  const double t0 = m_.host_now();

  bool done = false;
  while (!done) {
    try {
      run_once();
      done = true;
      result_.success = true;
    } catch (const Error& e) {
      if (!ft_ || result_.reruns >= opt_.max_reruns) {
        result_.note = e.what();
        done = true;
      } else {
        ++result_.reruns;
        tel_.rerun(result_.reruns, e.what());
        const obs::PhaseScope recover(tel_.profile(), obs::Phase::Recover);
        upload();
      }
    }
  }

  m_.sync_all();
  result_.seconds = m_.host_now() - t0;
  // Householder QR (Q not formed): 4n^3/3 flops.
  const double flops = 4.0 * n_ * static_cast<double>(n_) * n_ / 3.0;
  result_.gflops =
      result_.seconds > 0.0 ? flops / result_.seconds / 1e9 : 0.0;

  if (result_.success && m_.numeric()) {
    m_.memcpy_d2h(a_->data(), d_a_, 0, static_cast<std::int64_t>(n_) * n_,
                  s_compute_, /*blocking=*/true);
    *tau_ = h_tau_;
  }
  return result_;
}

void QrRun::allocate() {
  d_a_ = m_.alloc(static_cast<std::int64_t>(n_) * n_);
  d_t_ = m_.alloc(static_cast<std::int64_t>(b_) * b_);
  if (ft_) {
    d_rchk_ = m_.alloc(static_cast<std::int64_t>(n_) * 2 * nb_);
    scratch_capacity_ =
        2LL * (static_cast<std::int64_t>(nb_) * nb_ + 2 * nb_) * b_;
    d_scratch_ = m_.alloc(scratch_capacity_);
    h_panel_chk_ = Matrix<double>(n_, kChecksumRows);
  }
  h_panel_ = Matrix<double>(n_, b_);
  h_t_ = Matrix<double>(b_, b_);
  h_tau_.assign(static_cast<std::size_t>(n_), 0.0);
  if (m_.numeric()) pristine_ = *a_;

  s_compute_ = m_.default_stream();
  if (ft_) {
    s_chk_ = m_.create_stream();
    int streams = opt_.recalc_streams > 0
                      ? opt_.recalc_streams
                      : m_.profile().max_concurrent_kernels;
    if (!opt_.concurrent_recalc) streams = 1;
    for (int i = 0; i < streams; ++i) s_recalc_.push_back(m_.create_stream());
  }
}

void QrRun::upload() {
  m_.memcpy_h2d(d_a_, 0, m_.numeric() ? pristine_.data() : nullptr,
                static_cast<std::int64_t>(n_) * n_, s_compute_,
                /*blocking=*/true);
}

void QrRun::encode() {
  if (!ft_) return;
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Encode);
  const EventId e_up = m_.record_event(s_compute_);
  for (StreamId s : s_recalc_) m_.stream_wait_event(s, e_up);
  int q = 0;
  for (int k = 0; k < nb_; ++k) {
    for (int i = 0; i < nb_; ++i) {
      const StreamId s = s_recalc_[q++ % s_recalc_.size()];
      const DMat blk = data_block(i, k);
      const DMat chk = rchk_block(i, k);
      KernelDesc d{"encode_r", KernelClass::Blas2,
                   blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
      m_.launch(s, d, [blk, chk] {
        encode_block_rows(ConstMatrixView<double>(blk.view()), chk.view());
      });
    }
  }
  for (StreamId s : s_recalc_) {
    const EventId e = m_.record_event(s);
    m_.stream_wait_event(s_compute_, e);
    m_.stream_wait_event(s_chk_, e);
  }
}

void QrRun::run_once() {
  if (use_dag()) {
    run_once_dag();
    return;
  }
  encode();
  // Stochastic transfer faults cover the armed H2D copies (factored
  // panel, row checksums): V is always verified before LARFB consumes
  // it and checksum strikes surface as repairs, so nothing lands
  // silently. The T factor's copy stays excluded — T carries no
  // checksums, and a corrupted T would update data and checksum strips
  // identically, i.e. invisibly (the documented exposure above).
  sim::TransferArmGuard arm(m_, /*h2d=*/true, /*d2h=*/false);
  for (int j = 0; j < nb_; ++j) iterate(j);
  if (ft_) final_sweep();
  m_.sync_all();
}

void QrRun::absorb(const VerifyOutcome& out) {
  result_.errors_detected += out.errors_detected;
  result_.errors_corrected += out.errors_corrected;
  result_.checksum_repairs += out.checksum_repairs;
  if (out.uncorrectable) {
    throw UnrecoverableCorruptionError("more than one error per block row");
  }
}

void QrRun::verify_row_blocks(const std::vector<BlockId>& blocks,
                              fault::Op attr) {
  if (!ft_ || blocks.empty()) return;
  const obs::PhaseScope phase(tel_.profile(), obs::Phase::Verify);
  switch (attr) {
    case fault::Op::Potf2: result_.verified.potf2_blocks += blocks.size(); break;
    case fault::Op::Trsm: result_.verified.trsm_blocks += blocks.size(); break;
    case fault::Op::Syrk: result_.verified.syrk_blocks += blocks.size(); break;
    case fault::Op::Gemm: result_.verified.gemm_blocks += blocks.size(); break;
  }
  tel_.verify_scheduled(attr, blocks.size());
  const EventId e_comp = m_.record_event(s_compute_);
  const EventId e_chk = m_.record_event(s_chk_);
  const int nstreams = std::max(
      1, std::min(static_cast<int>(s_recalc_.size()),
                  static_cast<int>(blocks.size())));
  for (int i = 0; i < nstreams; ++i) {
    m_.stream_wait_event(s_recalc_[i], e_comp);
    m_.stream_wait_event(s_recalc_[i], e_chk);
  }
  std::int64_t pos = 0;
  for (std::size_t q = 0; q < blocks.size(); ++q) {
    const auto [bi, bk] = blocks[q];
    issue_row_verify(s_recalc_[q % nstreams], bi, bk, attr, pos, cur_iter_);
    pos += 2LL * bs(bi);
  }
  for (int i = 0; i < nstreams; ++i) {
    const EventId e = m_.record_event(s_recalc_[i]);
    m_.stream_wait_event(s_compute_, e);
    m_.stream_wait_event(s_chk_, e);
  }
}

void QrRun::issue_row_verify(StreamId s, int bi, int bk, fault::Op attr,
                             std::int64_t pos, int iter) {
  const DMat blk = data_block(bi, bk);
  FTLA_CHECK(pos + 2LL * blk.rows <= scratch_capacity_);
  const DMat scratch{&d_scratch_, pos, blk.rows, kChecksumRows, blk.rows};
  KernelDesc rd{"recalc_r", KernelClass::Blas2,
                blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
  m_.launch(s, rd, [blk, scratch] {
    encode_block_rows(ConstMatrixView<double>(blk.view()), scratch.view());
  });
  const DMat chk = rchk_block(bi, bk);
  const Tolerance tol = opt_.tolerance;
  KernelDesc cd{"verify_r", KernelClass::Compare, 4LL * blk.rows, 0};
  const std::int64_t rflops = rd.flops;
  m_.launch(s, cd, [this, blk, chk, tol, scratch, attr, bi, bk, rflops,
                    iter] {
    const VerifyOutcome out =
        verify_block_rows(blk.view(), chk.view(),
                          ConstMatrixView<double>(scratch.view()), tol);
    tel_.block_verified(out, attr, iter, bi, bk, rflops, off(bi), blk.rows,
                        off(bk), blk.cols);
    absorb(out);
  });
}

void QrRun::hook_storage(fault::Op op, int j) {
  if (injector_ == nullptr) return;
  for (const auto& spec :
       injector_->take(fault::FaultType::Storage, op, j)) {
    if (!m_.numeric()) continue;
    int bi = spec.block_row;
    int bk = spec.block_col;
    if (bi < 0) bi = std::min(j + 1, nb_ - 1);
    if (bk < 0) bk = op == fault::Op::Potf2 || op == fault::Op::Trsm
                         ? j
                         : std::min(j + 1, nb_ - 1);
    FTLA_CHECK(bi >= 0 && bi < nb_ && bk >= 0 && bk < nb_);
    const int grow = off(bi) + std::min(spec.elem_row, bs(bi) - 1);
    const int gcol = off(bk) + std::min(spec.elem_col, bs(bk) - 1);
    double* p = d_a_.data() + static_cast<std::int64_t>(gcol) * n_ + grow;
    const double old_value = *p;
    for (int bit : spec.bits) *p = flip_bit(*p, bit);
    injector_->record(spec, old_value, *p, grow, gcol);
  }
}

void QrRun::hook_computing(fault::Op op, int j) {
  if (injector_ == nullptr) return;
  for (const auto& spec :
       injector_->take(fault::FaultType::Computing, op, j)) {
    if (!m_.numeric()) continue;
    int bi = spec.block_row;
    int bk = spec.block_col;
    if (bi < 0) bi = std::min(j + 1, nb_ - 1);
    if (bk < 0) bk = op == fault::Op::Potf2 ? j : std::min(j + 1, nb_ - 1);
    FTLA_CHECK(bi >= 0 && bi < nb_ && bk >= 0 && bk < nb_);
    const int grow = off(bi) + std::min(spec.elem_row, bs(bi) - 1);
    const int gcol = off(bk) + std::min(spec.elem_col, bs(bk) - 1);
    double* p = d_a_.data() + static_cast<std::int64_t>(gcol) * n_ + grow;
    const double old_value = *p;
    *p = old_value + spec.magnitude * std::max(1.0, std::abs(old_value));
    injector_->record(spec, old_value, *p, grow, gcol);
  }
}

void QrRun::iterate(int j) {
  cur_iter_ = j;
  tel_.begin_iteration(j);
  const int jb = bs(j);
  const int mrem = n_ - off(j);
  const int right = n_ - off(j) - jb;
  const bool verify_this_iter = (j % opt_.verify_interval) == 0;

  // ---------------- panel: fetch, factor + T on host, re-encode ------
  hook_storage(fault::Op::Potf2, j);
  if (ft_) {
    std::vector<BlockId> in;
    for (int i = j; i < nb_; ++i) in.emplace_back(i, j);
    verify_row_blocks(in, fault::Op::Potf2);
  }
  m_.memcpy_d2h_2d(m_.numeric() ? h_panel_.data() : nullptr, n_, d_a_,
                   static_cast<std::int64_t>(off(j)) * n_ + off(j), n_, mrem,
                   jb, s_compute_, /*blocking=*/true);
  {
    // geqf2 ~ 2 m b^2 flops, larft ~ m b^2.
    KernelDesc d{"geqf2+larft", KernelClass::HostPotf2,
                 3LL * mrem * jb * jb, 0};
    m_.host_compute(d, [this, j, mrem, jb] {
      auto panel = h_panel_.block(0, 0, mrem, jb);
      blas::geqf2(panel, h_tau_.data() + off(j));
      blas::larft(ConstMatrixView<double>(panel), h_tau_.data() + off(j),
                  h_t_.block(0, 0, jb, jb));
    });
  }
  if (ft_) {
    KernelDesc d{"encode_panel_r", KernelClass::HostChecksum,
                 4LL * mrem * jb, 0};
    m_.host_compute(d, [this, j, jb] {
      for (int i = j; i < nb_; ++i) {
        encode_block_rows(
            ConstMatrixView<double>(
                h_panel_.block(off(i) - off(j), 0, bs(i), jb)),
            h_panel_chk_.block(off(i), 0, bs(i), kChecksumRows));
      }
    });
  }
  m_.memcpy_h2d_2d(d_a_, static_cast<std::int64_t>(off(j)) * n_ + off(j), n_,
                   m_.numeric() ? h_panel_.data() : nullptr, n_, mrem, jb,
                   s_compute_);
  {
    // T is unprotected by checksums (see the class comment's exposure
    // note): keep its copy out of the stochastic fault surface.
    sim::TransferArmGuard t_arm(m_, /*h2d=*/false, /*d2h=*/false);
    m_.memcpy_h2d(d_t_, 0, m_.numeric() ? h_t_.data() : nullptr,
                  static_cast<std::int64_t>(jb) * jb, s_compute_);
  }
  if (ft_) {
    // The re-encoded panel row checksums ride back only because FT is on.
    const obs::PhaseScope chk_phase(tel_.profile(), obs::Phase::Update);
    m_.memcpy_h2d_2d(d_rchk_, static_cast<std::int64_t>(2 * j) * n_ + off(j),
                     n_, m_.numeric() ? &h_panel_chk_(off(j), 0) : nullptr,
                     h_panel_chk_.ld(), mrem, kChecksumRows, s_compute_);
  }
  hook_computing(fault::Op::Potf2, j);
  const EventId e_panel = m_.record_event(s_compute_);

  if (right <= 0) return;

  // ---------------- trailing update: C := (I - V T V^T)^T C ----------
  hook_storage(fault::Op::Trsm, j);  // faults on the V/T staging window
  hook_storage(fault::Op::Gemm, j);
  if (ft_) {
    // V is always verified before the trailing update reads it: with
    // row checksums alone, a corrupted reflector would produce a
    // consistently-wrong (hence invisible) update.
    std::vector<BlockId> v_in;
    for (int i = j; i < nb_; ++i) v_in.emplace_back(i, j);
    verify_row_blocks(v_in, fault::Op::Trsm);
    if (verify_this_iter) {
      std::vector<BlockId> c_in;
      for (int i = j; i < nb_; ++i)
        for (int k = j + 1; k < nb_; ++k) c_in.emplace_back(i, k);
      verify_row_blocks(c_in, fault::Op::Gemm);
    } else {
      // Opt 3: trailing-block verification skipped this iteration.
      tel_.verify_skipped(fault::Op::Gemm,
                          static_cast<std::size_t>(nb_ - j) *
                              static_cast<std::size_t>(nb_ - j - 1),
                          j);
    }
  }
  {
    const DMat v = data_region(off(j), off(j), mrem, jb);
    const DMat t = DMat{&d_t_, 0, jb, jb, b_};
    const DMat c = data_region(off(j), off(j) + jb, mrem, right);
    KernelDesc d{"larfb", KernelClass::Blas3,
                 4LL * mrem * jb * right, 0};
    m_.launch(s_compute_, d, [v, t, c] {
      blas::larfb_left_t(ConstMatrixView<double>(v.view()),
                         ConstMatrixView<double>(t.view()), c.view());
    });
  }
  hook_computing(fault::Op::Gemm, j);
  if (ft_) {
    // rchk(M C) = M rchk(C): the identical reflector applies to the
    // checksum columns.
    m_.stream_wait_event(s_chk_, e_panel);
    const DMat v = data_region(off(j), off(j), mrem, jb);
    const DMat t = DMat{&d_t_, 0, jb, jb, b_};
    const DMat strip = rchk_strip(off(j), mrem, j + 1, nb_);
    KernelDesc d{"larfb_rchk", KernelClass::Blas3Skinny,
                 4LL * mrem * jb * 2 * (nb_ - j - 1), 0};
    m_.launch(s_chk_, d, [v, t, strip] {
      blas::larfb_left_t(ConstMatrixView<double>(v.view()),
                         ConstMatrixView<double>(t.view()), strip.view());
    });
  }
}

void QrRun::final_sweep() {
  cur_iter_ = -1;  // telemetry: the sweep belongs to no outer iteration
  tel_.begin_iteration(-1);
  std::vector<BlockId> all;
  for (int k = 0; k < nb_; ++k)
    for (int i = 0; i < nb_; ++i) all.emplace_back(i, k);
  verify_row_blocks(all, fault::Op::Trsm);
}

// ----------------------------------------------------------------------
// Task-graph (DAG) runtime path (docs/runtime.md)
//
// Same construction as the Cholesky and LU drivers: the graph is built
// in exact bulk issue order, so the deterministic schedule replays bulk
// program order and the numerics (including tau) are bit-identical.
// The timing win comes from dropping the bulk verify-batch barriers and
// from the final sweep overlapping the factorization tail. The block
// reflector's T factor is a real tile here: LARFB tasks read it, the
// next panel's staging copy overwrites it, and the inferred WAR edge
// keeps the overlap sound.
// ----------------------------------------------------------------------

std::vector<StreamId> QrRun::dag_streams() const {
  std::vector<StreamId> streams{s_compute_};
  if (ft_) {
    streams.push_back(s_chk_);
    streams.insert(streams.end(), s_recalc_.begin(), s_recalc_.end());
  }
  return streams;
}

void QrRun::dag_hook(runtime::TaskGraph& g, const char* name, int iter,
                     std::function<void()> fn) {
  // Fault hooks consume injector state at a fixed program point; an
  // empty footprint keeps them out of the dependency structure while
  // insertion order fixes *when* they fire.
  if (injector_ == nullptr) return;
  runtime::TaskOptions opts;
  opts.phase = obs::Phase::Base;
  opts.iteration = iter;
  opts.where = runtime::Where::Inline;
  g.add_task(name, {},
             [fn = std::move(fn)](const runtime::TaskContext&) { fn(); },
             opts);
}

void QrRun::dag_verify(runtime::TaskGraph& g, int bi, int bk, fault::Op attr,
                       int iter) {
  if (!ft_) return;
  switch (attr) {
    case fault::Op::Potf2: result_.verified.potf2_blocks += 1; break;
    case fault::Op::Trsm: result_.verified.trsm_blocks += 1; break;
    case fault::Op::Syrk: result_.verified.syrk_blocks += 1; break;
    case fault::Op::Gemm: result_.verified.gemm_blocks += 1; break;
  }
  tel_.verify_scheduled(attr, 1);
  const std::int64_t nslots = scratch_capacity_ / (2 * b_);
  const int slot = static_cast<int>(dag_slot_++ % nslots);
  const std::int64_t pos = static_cast<std::int64_t>(slot) * 2 * b_;
  runtime::TaskOptions opts;
  opts.phase = obs::Phase::Verify;
  opts.iteration = iter;
  g.add_task(
      "verify_r",
      {runtime::rw(dtile(bi, bk)), runtime::rw(rctile(bi, bk)),
       runtime::write(stile(slot))},
      [this, bi, bk, attr, pos, slot, iter](const runtime::TaskContext& c) {
        c.tiles.rw(dtile(bi, bk));
        c.tiles.rw(rctile(bi, bk));
        c.tiles.write(stile(slot));
        issue_row_verify(c.stream, bi, bk, attr, pos, iter);
      },
      opts);
}

void QrRun::dag_encode(runtime::TaskGraph& g) {
  runtime::TaskOptions opts;
  opts.phase = obs::Phase::Encode;
  for (int k = 0; k < nb_; ++k) {
    for (int i = 0; i < nb_; ++i) {
      const DMat blk = data_block(i, k);
      const DMat chk = rchk_block(i, k);
      g.add_task("encode",
                 {runtime::read(dtile(i, k)), runtime::write(rctile(i, k))},
                 [this, blk, chk, i, k](const runtime::TaskContext& c) {
                   c.tiles.read(dtile(i, k));
                   c.tiles.write(rctile(i, k));
                   KernelDesc d{"encode_r", KernelClass::Blas2,
                                blas::gemv_flops(blk.rows, blk.cols) * 2, 0};
                   m_.launch(c.stream, d, [blk, chk] {
                     encode_block_rows(ConstMatrixView<double>(blk.view()),
                                       chk.view());
                   });
                 },
                 opts);
    }
  }
}

void QrRun::dag_iteration(runtime::TaskGraph& g, int j) {
  const int jb = bs(j);
  const int mrem = n_ - off(j);
  const int right = n_ - off(j) - jb;
  const bool verify_this_iter = (j % opt_.verify_interval) == 0;

  runtime::TaskOptions base;
  base.phase = obs::Phase::Base;
  base.iteration = j;
  runtime::TaskOptions update = base;
  update.phase = obs::Phase::Update;
  runtime::TaskOptions host = base;
  host.phase = obs::Phase::Base;
  host.where = runtime::Where::Host;

  // ---------------- panel: fetch, factor + T on host, re-encode ------
  dag_hook(g, "hook_storage_potf2", j,
           [this, j] { hook_storage(fault::Op::Potf2, j); });
  if (ft_) {
    for (int i = j; i < nb_; ++i) dag_verify(g, i, j, fault::Op::Potf2, j);
  }
  {
    std::vector<runtime::Footprint> fp;
    for (int i = j; i < nb_; ++i) fp.push_back(runtime::read(dtile(i, j)));
    fp.push_back(runtime::write(htile()));
    g.add_task("d2h_panel", std::move(fp),
               [this, j, jb, mrem](const runtime::TaskContext& c) {
                 for (int i = j; i < nb_; ++i) c.tiles.read(dtile(i, j));
                 c.tiles.write(htile());
                 m_.memcpy_d2h_2d(
                     m_.numeric() ? h_panel_.data() : nullptr, n_, d_a_,
                     static_cast<std::int64_t>(off(j)) * n_ + off(j), n_,
                     mrem, jb, c.stream);
               },
               base);
  }
  g.add_task("geqf2+larft", {runtime::rw(htile())},
             [this, j, mrem, jb](const runtime::TaskContext& c) {
               c.tiles.rw(htile());
               KernelDesc d{"geqf2+larft", KernelClass::HostPotf2,
                            3LL * mrem * jb * jb, 0};
               m_.host_compute(d, [this, j, mrem, jb] {
                 auto panel = h_panel_.block(0, 0, mrem, jb);
                 blas::geqf2(panel, h_tau_.data() + off(j));
                 blas::larft(ConstMatrixView<double>(panel),
                             h_tau_.data() + off(j),
                             h_t_.block(0, 0, jb, jb));
               });
             },
             host);
  if (ft_) {
    g.add_task("encode_panel_r", {runtime::rw(htile())},
               [this, j, mrem, jb](const runtime::TaskContext& c) {
                 c.tiles.rw(htile());
                 KernelDesc d{"encode_panel_r", KernelClass::HostChecksum,
                              4LL * mrem * jb, 0};
                 m_.host_compute(d, [this, j, jb] {
                   for (int i = j; i < nb_; ++i) {
                     encode_block_rows(
                         ConstMatrixView<double>(
                             h_panel_.block(off(i) - off(j), 0, bs(i), jb)),
                         h_panel_chk_.block(off(i), 0, bs(i),
                                            kChecksumRows));
                   }
                 });
               },
               host);
  }
  {
    std::vector<runtime::Footprint> fp{runtime::read(htile())};
    for (int i = j; i < nb_; ++i) fp.push_back(runtime::write(dtile(i, j)));
    g.add_task("h2d_panel", std::move(fp),
               [this, j, jb, mrem](const runtime::TaskContext& c) {
                 c.tiles.read(htile());
                 for (int i = j; i < nb_; ++i) c.tiles.write(dtile(i, j));
                 m_.memcpy_h2d_2d(
                     d_a_, static_cast<std::int64_t>(off(j)) * n_ + off(j),
                     n_, m_.numeric() ? h_panel_.data() : nullptr, n_, mrem,
                     jb, c.stream);
               },
               base);
  }
  g.add_task("h2d_t", {runtime::read(htile()), runtime::write(ttile())},
             [this, jb](const runtime::TaskContext& c) {
               c.tiles.read(htile());
               c.tiles.write(ttile());
               // T is unprotected by checksums (see the class comment's
               // exposure note): keep its copy out of the fault surface.
               sim::TransferArmGuard t_arm(m_, /*h2d=*/false,
                                           /*d2h=*/false);
               m_.memcpy_h2d(d_t_, 0, m_.numeric() ? h_t_.data() : nullptr,
                             static_cast<std::int64_t>(jb) * jb, c.stream);
             },
             base);
  if (ft_) {
    std::vector<runtime::Footprint> fp{runtime::read(htile())};
    for (int i = j; i < nb_; ++i)
      fp.push_back(runtime::write(rctile(i, j)));
    g.add_task("h2d_panel_chk", std::move(fp),
               [this, j, jb, mrem](const runtime::TaskContext& c) {
                 c.tiles.read(htile());
                 for (int i = j; i < nb_; ++i) c.tiles.write(rctile(i, j));
                 m_.memcpy_h2d_2d(
                     d_rchk_,
                     static_cast<std::int64_t>(2 * j) * n_ + off(j), n_,
                     m_.numeric() ? &h_panel_chk_(off(j), 0) : nullptr,
                     h_panel_chk_.ld(), mrem, kChecksumRows, c.stream);
               },
               update);
  }
  dag_hook(g, "hook_computing_potf2", j,
           [this, j] { hook_computing(fault::Op::Potf2, j); });

  if (right <= 0) return;

  // ---------------- trailing update: C := (I - V T V^T)^T C ----------
  dag_hook(g, "hook_storage_trsm", j,
           [this, j] { hook_storage(fault::Op::Trsm, j); });
  dag_hook(g, "hook_storage_gemm", j,
           [this, j] { hook_storage(fault::Op::Gemm, j); });
  if (ft_) {
    // V is always verified before the trailing update reads it (see the
    // bulk path); the trailing blocks obey the K interval.
    for (int i = j; i < nb_; ++i) dag_verify(g, i, j, fault::Op::Trsm, j);
    if (verify_this_iter) {
      for (int i = j; i < nb_; ++i)
        for (int k = j + 1; k < nb_; ++k)
          dag_verify(g, i, k, fault::Op::Gemm, j);
    } else {
      tel_.verify_skipped(fault::Op::Gemm,
                          static_cast<std::size_t>(nb_ - j) *
                              static_cast<std::size_t>(nb_ - j - 1),
                          j);
    }
  }
  {
    std::vector<runtime::Footprint> fp;
    for (int i = j; i < nb_; ++i) fp.push_back(runtime::read(dtile(i, j)));
    fp.push_back(runtime::read(ttile()));
    for (int i = j; i < nb_; ++i)
      for (int k = j + 1; k < nb_; ++k)
        fp.push_back(runtime::rw(dtile(i, k)));
    g.add_task("larfb", std::move(fp),
               [this, j, jb, mrem, right](const runtime::TaskContext& c) {
                 for (int i = j; i < nb_; ++i) c.tiles.read(dtile(i, j));
                 c.tiles.read(ttile());
                 for (int i = j; i < nb_; ++i)
                   for (int k = j + 1; k < nb_; ++k) c.tiles.rw(dtile(i, k));
                 const DMat v = data_region(off(j), off(j), mrem, jb);
                 const DMat t = DMat{&d_t_, 0, jb, jb, b_};
                 const DMat cmat =
                     data_region(off(j), off(j) + jb, mrem, right);
                 KernelDesc d{"larfb", KernelClass::Blas3,
                              4LL * mrem * jb * right, 0};
                 m_.launch(c.stream, d, [v, t, cmat] {
                   blas::larfb_left_t(ConstMatrixView<double>(v.view()),
                                      ConstMatrixView<double>(t.view()),
                                      cmat.view());
                 });
               },
               base);
  }
  dag_hook(g, "hook_computing_gemm", j,
           [this, j] { hook_computing(fault::Op::Gemm, j); });
  if (ft_) {
    // rchk(M C) = M rchk(C): the identical reflector applies to the
    // checksum columns.
    std::vector<runtime::Footprint> fp;
    for (int i = j; i < nb_; ++i) fp.push_back(runtime::read(dtile(i, j)));
    fp.push_back(runtime::read(ttile()));
    for (int i = j; i < nb_; ++i)
      for (int k = j + 1; k < nb_; ++k)
        fp.push_back(runtime::rw(rctile(i, k)));
    g.add_task("larfb_rchk", std::move(fp),
               [this, j, jb, mrem](const runtime::TaskContext& c) {
                 for (int i = j; i < nb_; ++i) c.tiles.read(dtile(i, j));
                 c.tiles.read(ttile());
                 for (int i = j; i < nb_; ++i)
                   for (int k = j + 1; k < nb_; ++k)
                     c.tiles.rw(rctile(i, k));
                 const DMat v = data_region(off(j), off(j), mrem, jb);
                 const DMat t = DMat{&d_t_, 0, jb, jb, b_};
                 const DMat strip = rchk_strip(off(j), mrem, j + 1, nb_);
                 KernelDesc d{"larfb_rchk", KernelClass::Blas3Skinny,
                              4LL * mrem * jb * 2 * (nb_ - j - 1), 0};
                 m_.launch(c.stream, d, [v, t, strip] {
                   blas::larfb_left_t(ConstMatrixView<double>(v.view()),
                                      ConstMatrixView<double>(t.view()),
                                      strip.view());
                 });
               },
               update);
  }
}

void QrRun::dag_sweep(runtime::TaskGraph& g) {
  // End sweep over the finished factor (see final_sweep). Each verify
  // depends only on its block's last writer, so retired columns are
  // swept while the factorization tail still runs.
  for (int k = 0; k < nb_; ++k)
    for (int i = 0; i < nb_; ++i)
      dag_verify(g, i, k, fault::Op::Trsm, -1);
}

void QrRun::run_once_dag() {
  dag_slot_ = 0;
  runtime::TaskGraph g;
  if (ft_) dag_encode(g);
  for (int j = 0; j < nb_; ++j) {
    cur_iter_ = j;
    dag_iteration(g, j);
  }
  if (ft_) {
    cur_iter_ = -1;
    dag_sweep(g);
  }
  // Opt-in dynamic footprint sanitizer (docs/static-analysis.md).
  runtime::AccessTracker tracker;
  const bool sanitize = runtime::sanitize_env_enabled();
  if (sanitize) g.set_access_tracker(&tracker);
  // Same transfer-fault arming as the bulk path.
  sim::TransferArmGuard arm(m_, /*h2d=*/true, /*d2h=*/false);
  runtime::StreamRunOptions ropts;
  ropts.streams = dag_streams();
  ropts.profile = tel_.profile();
  ropts.metrics = opt_.metrics;
  ropts.schedule_seed = opt_.dag_schedule_seed;
  runtime::run_on_streams(g, m_, ropts);
  m_.sync_all();
  if (sanitize && !tracker.clean()) {
    throw Error("qr DAG failed footprint sanitizing\n" + tracker.report(g));
  }
}

}  // namespace

CholeskyResult qr(Machine& machine, Matrix<double>* a,
                  std::vector<double>* tau, int n, const QrOptions& options,
                  fault::Injector* injector) {
  QrRun run(machine, a, tau, n, options, injector);
  return run.execute();
}

}  // namespace ftla::abft
