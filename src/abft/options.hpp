// Public configuration and result types for the fault-tolerant Cholesky
// drivers.
#pragma once

#include <cstdint>
#include <string>

#include "abft/checksum.hpp"
#include "common/matrix.hpp"
#include "obs/trace.hpp"

namespace ftla::obs {
class EventSink;
class MetricsRegistry;
class SpanStore;
class TimeSeriesStore;
}  // namespace ftla::obs

namespace ftla::abft {

/// Which fault-tolerance scheme the driver runs.
enum class Variant {
  NoFt,           ///< plain MAGMA-style hybrid Cholesky (baseline)
  Offline,        ///< Huang & Abraham: encode once, verify at the end
  Online,         ///< post-update verification (FT-ScaLAPACK style)
  EnhancedOnline  ///< this paper: pre-reference verification + Opts 1-3
};

[[nodiscard]] const char* to_string(Variant v);

/// Where checksum *updating* executes (paper Opt 2).
enum class UpdatePlacement {
  Blocking,  ///< on the compute stream (the un-optimized baseline)
  Gpu,       ///< separate GPU stream, overlapped via concurrent kernels
  Cpu,       ///< host-side mirror updated by the otherwise-idle CPU
  Auto       ///< pick Gpu/Cpu with the paper's performance model
};

[[nodiscard]] const char* to_string(UpdatePlacement p);

/// How the driver recovers when verification finds unrecoverable
/// corruption (or positive definiteness breaks).
enum class Recovery {
  /// Restart the whole factorization (the paper's behaviour — what the
  /// 2x columns of Tables VII/VIII measure).
  Rerun,
  /// Roll back to a periodic on-device snapshot and resume from there
  /// (composing ABFT with checkpointing, the paper's citation [11]).
  /// Offline-ABFT ignores this: its end-of-run detection cannot tell
  /// which checkpoint predates the corruption.
  Checkpoint,
};

[[nodiscard]] const char* to_string(Recovery r);

/// Which execution structure the driver uses (docs/runtime.md).
enum class RuntimeMode {
  /// Paper Algorithm 1: bulk-synchronous iterations, verification
  /// batches fenced against all prior compute. The conformance oracle.
  Bulk,
  /// Dependency-driven task graph (src/runtime): the same kernels as
  /// first-class task nodes with inferred RAW/WAR/WAW edges, scheduled
  /// with cross-iteration lookahead so trailing updates, checksum
  /// updates and per-block verifications overlap. Bit-identical to
  /// Bulk fault-free; strictly shorter simulated makespan. Drivers
  /// fall back to Bulk for the combinations the graph does not model
  /// (CPU-side checksum mirror, checkpoint recovery, panel
  /// checkpoints).
  Dag,
};

[[nodiscard]] const char* to_string(RuntimeMode m);

/// Host-side panel checkpoint for resumable factorization (fleet
/// device-loss recovery, docs/fleet.md). Left-looking blocked Cholesky
/// never rewrites a block column after its own iteration retires it,
/// and columns right of the current panel stay pristine until their
/// iteration — so the completed panel columns alone reconstruct the
/// full mid-run state: re-upload the pristine input, overwrite columns
/// [0, iterations*block) with the stored slab, re-encode checksums, and
/// continue the outer loop at `iterations`. The panels were verified
/// before they retired (that is the ABFT invariant), so checkpointing
/// them costs one D2H copy per cadence and zero extra verification.
struct PanelCheckpoint {
  int n = 0;
  int block = 0;
  /// Completed outer iterations covered by `columns` (block columns).
  int iterations = 0;
  /// n x n column-major store; columns [0, iterations*block) are valid.
  Matrix<double> columns;

  void reset() noexcept { iterations = 0; }
  /// True when the stored slab can seed a resume of an (n_, block_) run.
  [[nodiscard]] bool usable(int n_, int block_) const noexcept {
    return iterations > 0 && n == n_ && block == block_;
  }
};

struct CholeskyOptions {
  Variant variant = Variant::EnhancedOnline;

  /// Block size B; 0 selects the machine profile's MAGMA default.
  int block_size = 0;

  /// Opt 3: verify GEMM/TRSM inputs only every K-th outer iteration.
  /// SYRK inputs are always verified (errors entering the diagonal block
  /// are unrecoverable). K = 1 verifies everything every iteration.
  int verify_interval = 1;

  /// Opt 1: run checksum-recalculation kernels concurrently on multiple
  /// streams. When false, they serialize on the compute stream.
  bool concurrent_recalc = true;
  /// Number of recalc streams; 0 = the device concurrent-kernel limit.
  int recalc_streams = 0;

  /// Opt 2: placement of checksum updating.
  UpdatePlacement placement = UpdatePlacement::Auto;

  /// Detection tolerance used by every verification.
  Tolerance tolerance{};

  /// How many times an unrecoverable corruption may trigger a full
  /// restart before the driver gives up.
  int max_reruns = 2;

  /// Execution structure: bulk-synchronous (the oracle) or the
  /// dependency-driven task-graph runtime.
  RuntimeMode runtime = RuntimeMode::Bulk;
  /// RuntimeMode::Dag only: 0 = the deterministic schedule; nonzero =
  /// issue the DAG in the seeded random topological order drawn by
  /// TaskGraph::random_schedule. The schedule-permutation fuzzer's
  /// knob — numerics are bit-identical for every seed.
  std::uint64_t dag_schedule_seed = 0;

  /// Recovery strategy on unrecoverable corruption.
  Recovery recovery = Recovery::Rerun;
  /// Iterations between device snapshots (Recovery::Checkpoint).
  int checkpoint_interval = 8;
  /// Rollback budget before escalating to a full rerun.
  int max_rollbacks = 8;

  /// Transfer-fault hardening (fault campaigns; off by default so the
  /// verification counts of the paper's Table I are unchanged). Adds
  /// two verifications per run path that close the PCIe windows the
  /// in-loop scheme cannot see: an arrival check of the diagonal block
  /// (and its checksum rows) on the host after the D2H staging copy and
  /// before POTF2 consumes it, and — on the last block column, where no
  /// TRSM re-reads the factor block — one device-side verification
  /// after the factor's return H2D copy.
  bool transfer_guard = false;

  /// Observability hooks (optional, not owned). When set, the driver
  /// emits structured telemetry events (verifications, detections,
  /// corrections, placement decisions, recovery) and mirrors the
  /// Table-I verification counters into the registry. See
  /// docs/observability.md for the event taxonomy and metric names.
  obs::EventSink* event_sink = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  /// Profiler span store (optional, not owned). Wire the same store
  /// into Machine::set_span_store so machine spans and driver
  /// phase/iteration tags meet in one place (docs/observability.md,
  /// "Simulated-time profiler").
  obs::SpanStore* profile = nullptr;

  /// Time-series store (optional, not owned): the telemetry layer
  /// samples verification progress and detection latencies over
  /// virtual time into it (docs/observability.md, "Analytics &
  /// postmortems").
  obs::TimeSeriesStore* timeseries = nullptr;

  /// Causal-trace store + context (optional, not owned). With both set,
  /// the driver records a "factorize" span under trace_ctx.span_id,
  /// one "pass" span per execution attempt (reruns included), resume
  /// markers, per-checkpoint-save spans carrying the D2H byte count,
  /// and — in RuntimeMode::Dag — one span per DAG task node
  /// (docs/observability.md, "Causal tracing & SLOs").
  obs::TraceStore* trace = nullptr;
  obs::TraceContext trace_ctx;

  /// Panel-checkpoint store (optional, not owned; Numeric mode only).
  /// Every `checkpoint_interval` completed iterations the driver
  /// appends the newly retired panel columns to it; when the store
  /// already matches (n, block) and holds iterations > 0, the run
  /// *resumes* after those iterations instead of starting cold — the
  /// fleet service hands a dead device's checkpoint to the retry on a
  /// surviving device (docs/fleet.md).
  PanelCheckpoint* panel_checkpoint = nullptr;
};

/// Instrumented verification counts, one row of the paper's Table I.
struct VerificationCounters {
  long long potf2_blocks = 0;
  long long trsm_blocks = 0;
  long long syrk_blocks = 0;
  long long gemm_blocks = 0;

  [[nodiscard]] long long total() const noexcept {
    return potf2_blocks + trsm_blocks + syrk_blocks + gemm_blocks;
  }
};

struct CholeskyResult {
  bool success = false;
  /// Total virtual time, including any recovery reruns.
  double seconds = 0.0;
  /// Useful-work rate n^3/3 / seconds, in GFLOP/s.
  double gflops = 0.0;

  int errors_detected = 0;
  int errors_corrected = 0;
  int checksum_repairs = 0;
  /// Full restarts performed after unrecoverable corruption.
  int reruns = 0;
  /// Checkpoint rollbacks performed (Recovery::Checkpoint).
  int rollbacks = 0;
  /// Outer iterations skipped by seeding from a panel checkpoint
  /// (options.panel_checkpoint); 0 for a cold start.
  int resumed_iterations = 0;
  /// Bytes streamed into the panel checkpoint (D2H), all saves summed.
  std::int64_t checkpoint_bytes = 0;
  /// True when an injected fault slipped past the scheme (possible for
  /// NoFt / Offline / Online under storage errors — the paper's point).
  bool fail_stop_observed = false;

  VerificationCounters verified;
  UpdatePlacement chosen_placement = UpdatePlacement::Gpu;
  std::string note;
};

}  // namespace ftla::abft
