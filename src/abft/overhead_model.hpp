// Closed-form overhead model (paper §VI, Tables II-VI).
//
// All counts are floating-point operations (or words for transfers) as
// the paper derives them; `relative` values divide by the factorization
// cost n^3/3. The per-operation breakdown lets the Table VI bench
// compare every analytic row against instrumented FLOP counters.
//
// Note on Table V: the paper's text (Opt 3) says the verification
// interval K applies to GEMM and TRSM while SYRK is always verified,
// but its Table V attaches K to SYRK instead of TRSM. Since SYRK and
// TRSM contribute identical 2n^2 terms the *total* is the same either
// way; we follow the text (K on GEMM+TRSM), and so does this model.
#pragma once

namespace ftla::abft {

struct OverheadBreakdown {
  // Absolute FLOP counts.
  double encode = 0.0;
  double update_potf2 = 0.0;
  double update_trsm = 0.0;
  double update_syrk = 0.0;
  double update_gemm = 0.0;
  double recalc_potf2 = 0.0;
  double recalc_trsm = 0.0;
  double recalc_syrk = 0.0;
  double recalc_gemm = 0.0;

  // Words transferred when checksum updating runs on the CPU.
  double xfer_initial_checksums = 0.0;
  double xfer_update_panels = 0.0;
  double xfer_verification = 0.0;

  // Checksum storage, in words (relative space overhead = 2/B).
  double checksum_words = 0.0;

  [[nodiscard]] double update_total() const {
    return update_potf2 + update_trsm + update_syrk + update_gemm;
  }
  [[nodiscard]] double recalc_total() const {
    return recalc_potf2 + recalc_trsm + recalc_syrk + recalc_gemm;
  }
  [[nodiscard]] double flops_total() const {
    return encode + update_total() + recalc_total();
  }
};

/// Cost of the factorization itself: n^3/3.
double cholesky_flops_model(int n);

/// Per-operation breakdown for classic Online-ABFT (Table IV column).
OverheadBreakdown online_abft_overhead(int n, int block);

/// Per-operation breakdown for Enhanced Online-ABFT with interval K
/// (Table V column).
OverheadBreakdown enhanced_abft_overhead(int n, int block,
                                         int verify_interval);

/// Overall relative overhead formulas of Table VI.
double online_relative_overhead(int n, int block);
double enhanced_relative_overhead(int n, int block, int verify_interval);

}  // namespace ftla::abft
