#include "abft/checksum.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace ftla::abft {

namespace {

// Elements below which checksum recalculation is not worth a pool
// round-trip (the fan-out costs a couple of microseconds).
constexpr long long kParallelEncodeElems = 16384;

bool use_pool_for(long long elems) {
  if (elems < kParallelEncodeElems) return false;
  if (common::ThreadPool::in_parallel_region()) return false;
  return common::global_pool().threads() > 1;
}

}  // namespace

void encode_block(ConstMatrixView<double> a, MatrixView<double> chk) {
  FTLA_CHECK(chk.rows() == kChecksumRows && chk.cols() == a.cols());
  // Each column's sums are computed start-to-finish by one lane, so the
  // result is bit-identical for every thread count / partition.
  const auto encode_cols = [&](std::int64_t c0, std::int64_t c1) {
    for (int c = static_cast<int>(c0); c < c1; ++c) {
      const double* col = &a(0, c);
      double s1 = 0.0;
      double s2 = 0.0;
      for (int i = 0; i < a.rows(); ++i) {
        s1 += col[i];
        s2 += (i + 1.0) * col[i];
      }
      chk(0, c) = s1;
      chk(1, c) = s2;
    }
  };
  if (use_pool_for(static_cast<long long>(a.rows()) * a.cols())) {
    common::global_pool().parallel_for_chunks(0, a.cols(), encode_cols);
  } else {
    encode_cols(0, a.cols());
  }
}

void potf2_update_checksum(ConstMatrixView<double> l,
                           MatrixView<double> chk) {
  const int n = l.rows();
  FTLA_CHECK(l.cols() == n && chk.rows() == kChecksumRows &&
             chk.cols() == n);
  // The checksum rows transform exactly like extra rows appended below
  // the block: scale by the pivot, then eliminate along the column.
  for (int j = 0; j < n; ++j) {
    const double d = l(j, j);
    chk(0, j) /= d;
    chk(1, j) /= d;
    for (int k = j + 1; k < n; ++k) {
      chk(0, k) -= chk(0, j) * l(k, j);
      chk(1, k) -= chk(1, j) * l(k, j);
    }
  }
}

VerifyOutcome verify_block(MatrixView<double> a, MatrixView<double> chk,
                           ConstMatrixView<double> recalc,
                           const Tolerance& tol) {
  const int cols = a.cols();
  const int rows = a.rows();
  FTLA_CHECK(chk.rows() == kChecksumRows && chk.cols() == cols);
  FTLA_CHECK(recalc.rows() == kChecksumRows && recalc.cols() == cols);

  VerifyOutcome out;
  for (int c = 0; c < cols; ++c) {
    const double d1 = recalc(0, c) - chk(0, c);
    const double d2 = recalc(1, c) - chk(1, c);
    // Per-row thresholds: judging both rows against one shared scale
    // lets a huge corrupted checksum inflate the threshold until the
    // other row's deviation reads as "clean" — a coincident data error
    // then classifies as checksum damage and the repair re-encodes the
    // checksum from the corrupted data (unbounded laundering). With
    // per-row scales the worst a threshold-band straddle can launder is
    // an error below that row's own detection floor.
    const double t1 = tol.threshold(
        std::max(std::abs(chk(0, c)), std::abs(recalc(0, c))));
    const double t2w = tol.threshold(
        std::max(std::abs(chk(1, c)), std::abs(recalc(1, c))));
    const bool e1 = std::abs(d1) > t1;
    const bool e2 = std::abs(d2) > t2w;
    if (!e1 && !e2) continue;

    if (e1 && e2) {
      // Single-data-error hypothesis: d2/d1 must be an integral row.
      const double r = d2 / d1;
      const int row1 = static_cast<int>(std::lround(r));
      if (row1 >= 1 && row1 <= rows &&
          std::abs(r - row1) <= 0.01 * std::max(1.0, std::abs(r))) {
        ++out.errors_detected;
        const double old_value = a(row1 - 1, c);
        double corrected = old_value - d1;
        // Size the syndrome against the *clean* scale (the stored
        // checksums) — the detection threshold t is inflated by the
        // corrupted recalc. Syndrome subtraction is only exact to
        // |d1|*eps; for exponent-scale corruption that rounding
        // residue alone is a visible error, so re-solve the checksum
        // equation from the clean neighbors in that regime.
        const double t_clean = tol.threshold(
            std::max(std::abs(chk(0, c)), std::abs(chk(1, c))));
        if (std::abs(d1) * 1e-13 > t_clean) {
          double rest = 0.0;
          for (int i = 0; i < rows; ++i) {
            if (i != row1 - 1) rest += a(i, c);
          }
          corrected = chk(0, c) - rest;
        }
        a(row1 - 1, c) = corrected;
        // Re-encode and recheck: a correlated double error can alias
        // to a valid single-error syndrome, and the miscorrection
        // leaves a sum-consistent error pair that the next
        // verification would misread as checksum damage and "repair"
        // — silent corruption. Escalate here instead. Post-correction
        // scale, so a huge pre-correction value cannot blunt the
        // recheck; 2x tolerates drift plus correction rounding.
        double s1 = 0.0;
        double s2 = 0.0;
        for (int i = 0; i < rows; ++i) {
          s1 += a(i, c);
          s2 += (i + 1.0) * a(i, c);
        }
        const double t2 = tol.threshold(
            std::max({std::abs(chk(0, c)), std::abs(chk(1, c)),
                      std::abs(s1), std::abs(s2)}));
        if (std::abs(s1 - chk(0, c)) > 2.0 * t2 ||
            std::abs(s2 - chk(1, c)) > 2.0 * t2) {
          out.uncorrectable = true;
        } else {
          ++out.errors_corrected;
          out.corrections.push_back(
              Correction{row1 - 1, c, old_value, corrected});
        }
      } else {
        ++out.errors_detected;
        out.uncorrectable = true;
      }
    } else if (e1) {
      // d2 clean: no data error can do this — chk row 1 is corrupted.
      chk(0, c) = recalc(0, c);
      ++out.checksum_repairs;
    } else {
      chk(1, c) = recalc(1, c);
      ++out.checksum_repairs;
    }
  }
  return out;
}

VerifyOutcome verify_block_host(MatrixView<double> a, MatrixView<double> chk,
                                const Tolerance& tol) {
  Matrix<double> recalc(kChecksumRows, a.cols());
  encode_block(a, recalc.view());
  return verify_block(a, chk, recalc.view(), tol);
}

void encode_block_rows(ConstMatrixView<double> a, MatrixView<double> chk) {
  FTLA_CHECK(chk.cols() == kChecksumRows && chk.rows() == a.rows());
  // Partitioned over row ranges: every row's accumulators sweep the
  // columns in the same order on one lane, so partitioning never
  // changes the floating-point result.
  const auto encode_rows = [&](std::int64_t r0, std::int64_t r1) {
    const int lo = static_cast<int>(r0);
    const int hi = static_cast<int>(r1);
    for (int i = lo; i < hi; ++i) {
      chk(i, 0) = 0.0;
      chk(i, 1) = 0.0;
    }
    for (int c = 0; c < a.cols(); ++c) {
      const double* col = &a(0, c);
      const double w = c + 1.0;
      for (int i = lo; i < hi; ++i) {
        chk(i, 0) += col[i];
        chk(i, 1) += w * col[i];
      }
    }
  };
  if (use_pool_for(static_cast<long long>(a.rows()) * a.cols())) {
    common::global_pool().parallel_for_chunks(0, a.rows(), encode_rows);
  } else {
    encode_rows(0, a.rows());
  }
}

VerifyOutcome verify_block_rows(MatrixView<double> a, MatrixView<double> chk,
                                ConstMatrixView<double> recalc,
                                const Tolerance& tol) {
  const int rows = a.rows();
  const int cols = a.cols();
  FTLA_CHECK(chk.cols() == kChecksumRows && chk.rows() == rows);
  FTLA_CHECK(recalc.cols() == kChecksumRows && recalc.rows() == rows);

  VerifyOutcome out;
  for (int r = 0; r < rows; ++r) {
    const double d1 = recalc(r, 0) - chk(r, 0);
    const double d2 = recalc(r, 1) - chk(r, 1);
    // Per-column thresholds; see verify_block for why a shared scale
    // would let a corrupted checksum mask a coincident data error.
    const double t1 = tol.threshold(
        std::max(std::abs(chk(r, 0)), std::abs(recalc(r, 0))));
    const double t2w = tol.threshold(
        std::max(std::abs(chk(r, 1)), std::abs(recalc(r, 1))));
    const bool e1 = std::abs(d1) > t1;
    const bool e2 = std::abs(d2) > t2w;
    if (!e1 && !e2) continue;

    if (e1 && e2) {
      const double q = d2 / d1;
      const int col1 = static_cast<int>(std::lround(q));
      if (col1 >= 1 && col1 <= cols &&
          std::abs(q - col1) <= 0.01 * std::max(1.0, std::abs(q))) {
        ++out.errors_detected;
        const double old_value = a(r, col1 - 1);
        double corrected = old_value - d1;
        // See verify_block: exponent-scale syndromes (sized against
        // the clean stored-checksum scale) must be corrected via the
        // checksum equation, not subtraction.
        const double t_clean = tol.threshold(
            std::max(std::abs(chk(r, 0)), std::abs(chk(r, 1))));
        if (std::abs(d1) * 1e-13 > t_clean) {
          double rest = 0.0;
          for (int cc = 0; cc < cols; ++cc) {
            if (cc != col1 - 1) rest += a(r, cc);
          }
          corrected = chk(r, 0) - rest;
        }
        a(r, col1 - 1) = corrected;
        // See verify_block: recheck at the post-correction scale so an
        // aliased double error escalates instead of laundering into a
        // checksum repair.
        double s1 = 0.0;
        double s2 = 0.0;
        for (int cc = 0; cc < cols; ++cc) {
          s1 += a(r, cc);
          s2 += (cc + 1.0) * a(r, cc);
        }
        const double t2 = tol.threshold(
            std::max({std::abs(chk(r, 0)), std::abs(chk(r, 1)),
                      std::abs(s1), std::abs(s2)}));
        if (std::abs(s1 - chk(r, 0)) > 2.0 * t2 ||
            std::abs(s2 - chk(r, 1)) > 2.0 * t2) {
          out.uncorrectable = true;
        } else {
          ++out.errors_corrected;
          out.corrections.push_back(
              Correction{r, col1 - 1, old_value, corrected});
        }
      } else {
        ++out.errors_detected;
        out.uncorrectable = true;
      }
    } else if (e1) {
      chk(r, 0) = recalc(r, 0);
      ++out.checksum_repairs;
    } else {
      chk(r, 1) = recalc(r, 1);
      ++out.checksum_repairs;
    }
  }
  return out;
}

VerifyOutcome verify_block_rows_host(MatrixView<double> a,
                                     MatrixView<double> chk,
                                     const Tolerance& tol) {
  Matrix<double> recalc(a.rows(), kChecksumRows);
  encode_block_rows(a, recalc.view());
  return verify_block_rows(a, chk, recalc.view(), tol);
}

}  // namespace ftla::abft
