// Non-overlapped hybrid Cholesky baseline standing in for CULA R18's
// dpotrf (paper Figs. 16-17 comparator).
//
// CULA is closed source; what the paper's performance plots need from it
// is a competent vendor-style hybrid routine that is measurably slower
// than MAGMA's. The well-understood reason MAGMA wins is pipelining:
// MAGMA hides the CPU panel factorization and the PCIe transfers behind
// the GPU's trailing GEMM, while a straightforward hybrid implementation
// runs the phases back-to-back. This driver implements exactly that
// synchronous schedule (same kernels, blocking transfers, no overlap).
#pragma once

#include "abft/options.hpp"
#include "common/matrix.hpp"
#include "sim/machine.hpp"

namespace ftla::abft {

/// Factorizes `*a` with the synchronous (non-overlapped) hybrid schedule.
/// No fault tolerance. `a` may be null in TimingOnly mode.
CholeskyResult cula_like_cholesky(sim::Machine& machine, Matrix<double>* a,
                                  int n, int block_size = 0);

}  // namespace ftla::abft
