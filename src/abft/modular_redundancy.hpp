// Double and Triple Modular Redundancy baselines (paper §I).
//
// The paper motivates ABFT by contrasting it with the general-purpose
// alternatives: DMR detects soft errors by running the computation twice
// and comparing (~100% overhead, detection only), TMR corrects them by
// running three times and voting (~200% overhead). These drivers
// implement exactly that — temporal redundancy of the NoFT hybrid
// Cholesky on the simulated node — so the overhead gap against ABFT can
// be measured rather than asserted.
#pragma once

#include "abft/options.hpp"
#include "common/matrix.hpp"
#include "fault/fault.hpp"
#include "sim/machine.hpp"

namespace ftla::abft {

struct RedundancyOptions {
  int block_size = 0;  ///< 0 = machine profile default
  /// Elementwise agreement tolerance for compare/vote.
  double compare_rtol = 1e-12;
  /// Full restarts allowed when detection (DMR) or voting (TMR) fails.
  int max_reruns = 2;
};

/// Runs the factorization twice and compares the factors elementwise.
/// A mismatch proves a transient error struck one replica; the pair is
/// re-run (DMR can detect but not tell which replica is right).
/// Numeric mode only for fault experiments; TimingOnly prices the
/// schedule (two factorizations + one comparison sweep).
CholeskyResult dmr_cholesky(sim::Machine& machine, Matrix<double>* a, int n,
                            const RedundancyOptions& options = {},
                            fault::Injector* injector = nullptr);

/// Runs the factorization three times and majority-votes every element
/// of the lower triangle. An element where all three replicas disagree
/// is unrecoverable and forces a re-run.
CholeskyResult tmr_cholesky(sim::Machine& machine, Matrix<double>* a, int n,
                            const RedundancyOptions& options = {},
                            fault::Injector* injector = nullptr);

}  // namespace ftla::abft
