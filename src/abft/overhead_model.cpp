#include "abft/overhead_model.hpp"

#include "common/error.hpp"

namespace ftla::abft {

double cholesky_flops_model(int n) {
  const double nn = n;
  return nn * nn * nn / 3.0;
}

namespace {

// Terms shared by both schemes (paper §VI items 1-2).
void fill_common(OverheadBreakdown& o, double n, double b) {
  o.encode = 2.0 * n * n;                   // O_encode = 2 n^2
  o.update_potf2 = 2.0 * b * n;             // Table III
  o.update_trsm = 2.0 * n * n;
  o.update_syrk = 2.0 * n * n;
  o.update_gemm = 2.0 * n * n * n / (3.0 * b);
  o.checksum_words = 2.0 * n * n / b;       // space overhead 2/B
  o.xfer_initial_checksums = 2.0 * n * n / b;
  o.xfer_update_panels = n * n / 2.0;
}

}  // namespace

OverheadBreakdown online_abft_overhead(int n, int block) {
  FTLA_CHECK(n > 0 && block > 0);
  const double nn = n;
  const double b = block;
  OverheadBreakdown o;
  fill_common(o, nn, b);
  // Table IV: recalculation after each update.
  o.recalc_potf2 = 4.0 * b * nn;
  o.recalc_trsm = 2.0 * nn * nn;
  o.recalc_syrk = 4.0 * b * nn;
  o.recalc_gemm = 2.0 * nn * nn;
  o.xfer_verification = nn * nn / (2.0 * b);
  return o;
}

OverheadBreakdown enhanced_abft_overhead(int n, int block,
                                         int verify_interval) {
  FTLA_CHECK(n > 0 && block > 0 && verify_interval > 0);
  const double nn = n;
  const double b = block;
  const double k = verify_interval;
  OverheadBreakdown o;
  fill_common(o, nn, b);
  // Table V, with K attached per the paper's text: GEMM and TRSM are
  // verified every K iterations, SYRK always (see header note).
  o.recalc_potf2 = 4.0 * b * nn;
  o.recalc_trsm = 2.0 * nn * nn / k;
  o.recalc_syrk = 2.0 * nn * nn;
  o.recalc_gemm = 2.0 * nn * nn * nn / (3.0 * b * k);
  o.xfer_verification = nn * nn * nn / (3.0 * k * b * b);
  return o;
}

double online_relative_overhead(int n, int block) {
  const double nn = n;
  const double b = block;
  return 30.0 / nn + 2.0 / b;
}

double enhanced_relative_overhead(int n, int block, int verify_interval) {
  const double nn = n;
  const double b = block;
  const double k = verify_interval;
  return (24.0 * k + 6.0) / (nn * k) + (2.0 * k + 2.0) / (b * k);
}

}  // namespace ftla::abft
