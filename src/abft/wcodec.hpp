// Generalized weighted checksum codec with configurable redundancy
// (extension of paper §IV-A).
//
// The paper uses two checksum rows (weights v1 = [1..1], v2 = [1..B])
// and corrects one error per block column; it notes that more weighted
// checksums correct more errors. This module makes that precise: with R
// checksum rows whose weights are the Vandermonde powers
//     w_k(i) = (i+1)^k,   k = 0..R-1,
// the syndromes of an error pattern {(row r_t, magnitude e_t)} are the
// power sums S_k = sum_t e_t * r_t^k (rows 1-based), which is exactly a
// real-field Reed-Solomon code: R syndromes locate and correct up to
// floor(R/2) simultaneous errors per column via Prony's method. R = 2
// reproduces the paper's codec; R = 4 corrects two errors per column.
//
// (Correcting m errors at *unknown* locations needs 2m syndromes; the
// literature's "m+1 checksums correct m errors" assumes locations are
// known, e.g. from an erasure model. This codec handles the harder
// unknown-location case.)
//
// All checksum *update* rules of the paper (SYRK/GEMM/TRSM and the
// POTF2 Algorithm-2 transform) are linear in the checksum rows, so they
// apply unchanged to any R — the transform here is shared.
#pragma once

#include <vector>

#include "abft/checksum.hpp"
#include "common/matrix.hpp"

namespace ftla::abft {

class WeightedCodec {
 public:
  /// `redundancy` = number of checksum rows R, 2 <= R <= 8.
  explicit WeightedCodec(int redundancy);

  [[nodiscard]] int redundancy() const noexcept { return redundancy_; }
  /// Maximum simultaneous errors per column this codec can correct.
  [[nodiscard]] int max_correctable() const noexcept {
    return redundancy_ / 2;
  }

  /// chk (R x cols) := W a, with W the Vandermonde weight matrix.
  void encode(ConstMatrixView<double> a, MatrixView<double> chk) const;

  /// Applies the POTF2 checksum transform (paper Algorithm 2) to R
  /// checksum rows: chk of the pre-factor block becomes chk of L.
  static void potf2_transform(ConstMatrixView<double> l,
                              MatrixView<double> chk);

  /// Verifies `a` against stored checksums `chk` given freshly
  /// recalculated checksums `recalc` (both R x cols); corrects up to
  /// max_correctable() errors per column in place, repairs corrupted
  /// checksum rows, and reports the outcome. Mirrors verify_block() for
  /// R = 2.
  [[nodiscard]] VerifyOutcome verify(MatrixView<double> a,
                                     MatrixView<double> chk,
                                     ConstMatrixView<double> recalc,
                                     const Tolerance& tol) const;

  /// Convenience: recalculate + verify on the host.
  [[nodiscard]] VerifyOutcome verify_host(MatrixView<double> a,
                                          MatrixView<double> chk,
                                          const Tolerance& tol) const;

 private:
  struct ColumnDecode {
    bool clean = true;
    bool uncorrectable = false;
    /// Checksum rows to repair (indices into the R rows); empty when a
    /// data correction was found.
    std::vector<int> bad_checksum_rows;
    /// Located data errors: (0-based row, error magnitude).
    std::vector<std::pair<int, double>> errors;
  };

  [[nodiscard]] ColumnDecode decode_column(const double* syndromes,
                                           const double* thresholds,
                                           int rows) const;

  int redundancy_;
};

}  // namespace ftla::abft
