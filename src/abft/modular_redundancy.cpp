#include "abft/modular_redundancy.hpp"

#include <cmath>
#include <functional>
#include <string>

#include "abft/cholesky.hpp"
#include "common/error.hpp"
#include "common/fp.hpp"

namespace ftla::abft {

namespace {

// Runs one NoFT replica. Faults (transient by definition) fire only on
// the attempt whose injector is non-null.
CholeskyResult run_replica(sim::Machine& m, Matrix<double>* a, int n,
                           const RedundancyOptions& opt,
                           fault::Injector* injector) {
  CholeskyOptions copt;
  copt.variant = Variant::NoFt;
  copt.block_size = opt.block_size;
  return cholesky(m, a, n, copt, injector);
}

// Virtual cost of an elementwise sweep over `replicas` lower triangles,
// executed on the host (where the voted result is assembled).
void charge_sweep(sim::Machine& m, int n, int replicas,
                  const std::function<void()>& body) {
  sim::KernelDesc d{"mr_sweep", sim::KernelClass::HostChecksum,
                    static_cast<std::int64_t>(replicas) * n * (n + 1) / 2,
                    0};
  m.host_compute(d, body);
}

bool agree(double x, double y, double rtol) {
  return approx_equal(x, y, rtol, rtol);
}

}  // namespace

CholeskyResult dmr_cholesky(sim::Machine& m, Matrix<double>* a, int n,
                            const RedundancyOptions& opt,
                            fault::Injector* injector) {
  FTLA_CHECK(n > 0);
  if (m.numeric()) FTLA_CHECK(a != nullptr && a->rows() == n);

  const double t0 = m.host_now();
  CholeskyResult out;
  Matrix<double> pristine;
  if (m.numeric()) pristine = *a;

  for (int attempt = 0;; ++attempt) {
    Matrix<double> r1, r2;
    if (m.numeric()) {
      r1 = pristine;
      r2 = pristine;
    }
    auto res1 = run_replica(m, m.numeric() ? &r1 : nullptr, n, opt,
                            attempt == 0 ? injector : nullptr);
    auto res2 = run_replica(m, m.numeric() ? &r2 : nullptr, n, opt, nullptr);
    if (!res1.success || !res2.success) {
      out.fail_stop_observed = true;
      ++out.errors_detected;  // a replica crash is itself a detection
      if (attempt >= opt.max_reruns) {
        out.note = "replica fail-stop: " +
                   (res1.success ? res2.note : res1.note);
        break;
      }
      ++out.reruns;
      continue;
    }
    bool mismatch = false;
    charge_sweep(m, n, 2, [&] {
      for (int j = 0; j < n && !mismatch; ++j) {
        for (int i = j; i < n; ++i) {
          if (!agree(r1(i, j), r2(i, j), opt.compare_rtol)) {
            mismatch = true;
            break;
          }
        }
      }
    });
    if (mismatch) {
      ++out.errors_detected;
      if (attempt >= opt.max_reruns) {
        out.note = "DMR mismatch persisted through max_reruns";
        break;
      }
      ++out.reruns;  // DMR cannot tell which replica is right: redo both
      continue;
    }
    if (m.numeric()) *a = r1;
    out.success = true;
    break;
  }

  m.sync_all();
  out.seconds = m.host_now() - t0;
  const double flops = static_cast<double>(n) * n * n / 3.0;
  out.gflops = out.seconds > 0.0 ? flops / out.seconds / 1e9 : 0.0;
  return out;
}

CholeskyResult tmr_cholesky(sim::Machine& m, Matrix<double>* a, int n,
                            const RedundancyOptions& opt,
                            fault::Injector* injector) {
  FTLA_CHECK(n > 0);
  if (m.numeric()) FTLA_CHECK(a != nullptr && a->rows() == n);

  const double t0 = m.host_now();
  CholeskyResult out;
  Matrix<double> pristine;
  if (m.numeric()) pristine = *a;

  for (int attempt = 0;; ++attempt) {
    Matrix<double> r[3];
    bool ok = true;
    std::string note;
    for (int k = 0; k < 3 && ok; ++k) {
      if (m.numeric()) r[k] = pristine;
      auto res =
          run_replica(m, m.numeric() ? &r[k] : nullptr, n, opt,
                      attempt == 0 && k == 0 ? injector : nullptr);
      if (!res.success) {
        ok = false;
        note = res.note;
      }
    }
    if (!ok) {
      out.fail_stop_observed = true;
      ++out.errors_detected;  // a replica crash is itself a detection
      if (attempt >= opt.max_reruns) {
        out.note = "replica fail-stop: " + note;
        break;
      }
      ++out.reruns;
      continue;
    }

    bool unrecoverable = false;
    int votes_corrected = 0;
    charge_sweep(m, n, 3, [&] {
      if (!m.numeric()) return;
      for (int j = 0; j < n; ++j) {
        for (int i = j; i < n; ++i) {
          const double x = r[0](i, j), y = r[1](i, j), z = r[2](i, j);
          const bool xy = agree(x, y, opt.compare_rtol);
          const bool xz = agree(x, z, opt.compare_rtol);
          const bool yz = agree(y, z, opt.compare_rtol);
          if (xy && xz) continue;       // unanimous
          if (xy || xz) {               // r[0] in the majority
            ++votes_corrected;
          } else if (yz) {              // r[0] is the outlier
            r[0](i, j) = y;
            ++votes_corrected;
          } else {
            unrecoverable = true;
            return;
          }
        }
      }
    });
    if (unrecoverable) {
      ++out.errors_detected;
      if (attempt >= opt.max_reruns) {
        out.note = "TMR three-way disagreement persisted";
        break;
      }
      ++out.reruns;
      continue;
    }
    out.errors_detected += votes_corrected > 0 ? 1 : 0;
    out.errors_corrected += votes_corrected;
    if (m.numeric()) *a = r[0];
    out.success = true;
    break;
  }

  m.sync_all();
  out.seconds = m.host_now() - t0;
  const double flops = static_cast<double>(n) * n * n / 3.0;
  out.gflops = out.seconds > 0.0 ? flops / out.seconds / 1e9 : 0.0;
  return out;
}

}  // namespace ftla::abft
