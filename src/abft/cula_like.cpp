#include "abft/cula_like.hpp"

#include <algorithm>

#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "common/error.hpp"
#include "sim/device_matrix.hpp"
#include "sim/gpublas.hpp"

namespace ftla::abft {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;
using sim::DMat;
using sim::KernelClass;
using sim::KernelDesc;

namespace {
// CULA R18's proprietary kernels reached a somewhat lower fraction of
// peak than MAGMA's on the same GPUs (visible as the constant gap in the
// paper's Figs. 16-17). Price this routine's device kernels as if they
// ran at 88% of the MAGMA-kernel efficiency.
constexpr double kCulaKernelEfficiencyRatio = 0.88;

std::int64_t derate(std::int64_t flops) {
  return static_cast<std::int64_t>(
      static_cast<double>(flops) / kCulaKernelEfficiencyRatio);
}
}  // namespace

CholeskyResult cula_like_cholesky(sim::Machine& m, Matrix<double>* a, int n,
                                  int block_size) {
  FTLA_CHECK(n > 0);
  if (m.numeric()) {
    FTLA_CHECK(a != nullptr && a->rows() == n && a->cols() == n);
  }
  const int b = block_size > 0 ? block_size : m.profile().magma_block_size;
  const int nb = (n + b - 1) / b;
  const auto s = m.default_stream();

  auto d_a = m.alloc(static_cast<std::int64_t>(n) * n);
  Matrix<double> h_diag(b, b);
  m.memcpy_h2d(d_a, 0, m.numeric() ? a->data() : nullptr,
               static_cast<std::int64_t>(n) * n, s, /*blocking=*/true);
  m.sync_all();
  const double t0 = m.host_now();

  CholeskyResult res;
  auto region = [&](int row, int col, int rows, int cols) {
    return DMat{&d_a, static_cast<std::int64_t>(col) * n + row, rows, cols,
                n};
  };

  try {
    for (int j = 0; j < nb; ++j) {
      const int jb = std::min(b, n - j * b);
      const int w = j * b;
      const int below = n - w - jb;
      if (j > 0) {
        const DMat diag = region(w, w, jb, jb);
        const DMat lc = region(w, 0, jb, w);
        KernelDesc d{"syrk", KernelClass::Blas3,
                     derate(blas::syrk_flops(jb, w)), 0};
        m.launch(s, d, [diag, lc] {
          blas::gemm(Trans::No, Trans::Yes, -1.0,
                     ftla::ConstMatrixView<double>(lc.view()), lc.view(),
                     1.0, diag.view());
        });
      }
      // Synchronous schedule: the GPU drains, the block crosses over,
      // the CPU factors it, and only then does the trailing update
      // start — nothing is hidden (this is the CULA performance gap).
      m.memcpy_d2h_2d(m.numeric() ? h_diag.data() : nullptr, b, d_a,
                      static_cast<std::int64_t>(w) * n + w, n, jb, jb, s,
                      /*blocking=*/true);
      KernelDesc pd{"potf2", KernelClass::HostPotf2, blas::potf2_flops(jb),
                    0};
      m.host_compute(pd, [&h_diag, jb] {
        auto blk = h_diag.block(0, 0, jb, jb);
        blas::potf2(blk);
        for (int c = 1; c < jb; ++c)
          for (int r = 0; r < c; ++r) blk(r, c) = 0.0;
      });
      m.memcpy_h2d_2d(d_a, static_cast<std::int64_t>(w) * n + w, n,
                      m.numeric() ? h_diag.data() : nullptr, b, jb, jb, s,
                      /*blocking=*/true);
      if (below > 0) {
        if (j > 0) {
          const sim::DConstMat ga = region(w + jb, 0, below, w);
          const sim::DConstMat gb = region(w, 0, jb, w);
          const DMat gc = region(w + jb, w, below, jb);
          KernelDesc gd{"gemm", KernelClass::Blas3,
                        derate(blas::gemm_flops(below, jb, w)), 0};
          m.launch(s, gd, [ga, gb, gc] {
            blas::gemm(Trans::No, Trans::Yes, -1.0, ga.view(), gb.view(),
                       1.0, gc.view());
          });
        }
        const sim::DConstMat ta = region(w, w, jb, jb);
        const DMat tb = region(w + jb, w, below, jb);
        KernelDesc td{"trsm", KernelClass::Blas3,
                      derate(blas::trsm_flops(Side::Right, below, jb)), 0};
        m.launch(s, td, [ta, tb] {
          blas::trsm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit,
                     1.0, ta.view(), tb.view());
        });
        m.sync_stream(s);
      }
    }
    res.success = true;
  } catch (const NotPositiveDefiniteError& e) {
    res.success = false;
    res.fail_stop_observed = true;
    res.note = e.what();
  }

  m.sync_all();
  res.seconds = m.host_now() - t0;
  const double flops = static_cast<double>(n) * n * n / 3.0;
  res.gflops = res.seconds > 0.0 ? flops / res.seconds / 1e9 : 0.0;
  if (res.success && m.numeric()) {
    m.memcpy_d2h(a->data(), d_a, 0, static_cast<std::int64_t>(n) * n, s,
                 /*blocking=*/true);
  }
  return res;
}

}  // namespace ftla::abft
