// Enhanced Online-ABFT QR factorization (extension).
//
// Blocked Householder QR on the simulated heterogeneous node, with the
// paper's pre-read verification idea carried over:
//
//   for each block column j:
//     [->]  fetch the panel A[j:, j] to the host
//     [CPU] GEQF2 + LARFT (reflectors V, scalars tau, block factor T);
//           re-encode the panel's row checksums from the fresh factors
//     [<-]  panel, checksums and T back to the GPU
//     [GPU] LARFB  A[j:, j+1:] := (I - V T V^T)^T A[j:, j+1:]
//
// Checksum scheme: QR applies orthogonal factors from the LEFT, so the
// protected invariant is the ROW checksum rchk(A) = A w — for any left
// factor M, rchk(M A) = M rchk(A), which means the trailing update
// protects its own checksums by applying the *identical* block
// reflector to the checksum columns. (Column checksums cannot follow a
// left multiplication at all; contrast with Cholesky/LU.) The V factor
// is re-encoded on the (reliable) host after panel factorization and
// verified before the trailing update reads it; a final sweep covers
// blocks at rest after their last use, as in the LU extension.
//
// Residual exposure, documented deliberately: the small T factor
// (B x B per iteration) crosses to the device unprotected and is
// consumed within the same iteration; a fault striking T in that short
// window produces a consistent-but-wrong trailing update that only an
// orthogonality check would catch. The paper's scheme has the analogous
// exposure for its host-side POTF2 outputs between Algorithm-2 runs.
#pragma once

#include "abft/options.hpp"
#include "common/matrix.hpp"
#include "fault/fault.hpp"
#include "sim/machine.hpp"

namespace ftla::abft {

struct QrOptions {
  /// NoFt or EnhancedOnline.
  Variant variant = Variant::EnhancedOnline;
  int block_size = 0;
  int verify_interval = 1;   ///< Opt 3 on the trailing blocks
  bool concurrent_recalc = true;
  int recalc_streams = 0;
  Tolerance tolerance{};
  int max_reruns = 2;

  /// Execution structure — see CholeskyOptions::runtime.
  RuntimeMode runtime = RuntimeMode::Bulk;
  /// Seeded random DAG issue order — see CholeskyOptions.
  std::uint64_t dag_schedule_seed = 0;

  /// Observability hooks (optional, not owned) — see CholeskyOptions.
  obs::EventSink* event_sink = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::SpanStore* profile = nullptr;
  obs::TimeSeriesStore* timeseries = nullptr;
};

/// Factorizes `*a` in place into the packed Householder form (V below
/// the diagonal, R on/above); `tau` receives n reflector scalars.
/// Fault hooks: Op::Potf2 = the panel factorization, Op::Trsm = the V/T
/// staging read, Op::Gemm = the trailing update.
CholeskyResult qr(sim::Machine& machine, Matrix<double>* a,
                  std::vector<double>* tau, int n, const QrOptions& options,
                  fault::Injector* injector = nullptr);

}  // namespace ftla::abft
