// Fault-tolerant hybrid Cholesky decomposition (the paper's system).
//
// The driver reproduces MAGMA's inner-product blocked Cholesky
// (paper Algorithm 1) on the simulated heterogeneous node:
//
//   for each block column j:
//     [GPU] SYRK   A[j,j]   -= A[j,0:j] A[j,0:j]^T
//     [->]  transfer A[j,j] to the host
//     [GPU] GEMM   A[j+1:,j] -= A[j+1:,0:j] A[j,0:j]^T     (async)
//     [CPU] POTF2  A[j,j] -> L[j,j]          (overlaps the GEMM)
//     [<-]  transfer L[j,j] back
//     [GPU] TRSM   A[j+1:,j] := A[j+1:,j] L[j,j]^{-T}
//
// layered with one of four fault-tolerance schemes (Variant) and the
// paper's three overhead optimizations (CholeskyOptions).
#pragma once

#include "abft/options.hpp"
#include "common/matrix.hpp"
#include "fault/fault.hpp"
#include "sim/machine.hpp"

namespace ftla::abft {

/// Factorizes the SPD matrix held in `*a` (lower triangle of the result
/// holds L; the strict upper triangle is left as zeros block-wise above
/// the diagonal blocks it touches).
///
/// * Numeric mode: `a` must be non-null with a->rows() == a->cols() == n;
///   on success it is overwritten with the factor. Faults from
///   `injector` are injected, detected and (scheme permitting) corrected
///   for real.
/// * TimingOnly mode: `a` may be null; the identical operation sequence
///   is priced on the virtual clock without numeric payloads (used for
///   paper-scale overhead sweeps). `injector` must be null.
///
/// The returned result reports virtual time, correction statistics and
/// the Table-I verification counters.
CholeskyResult cholesky(sim::Machine& machine, Matrix<double>* a, int n,
                        const CholeskyOptions& options,
                        fault::Injector* injector = nullptr);

/// The block size the driver will use for these options on this machine.
int resolve_block_size(const sim::MachineProfile& profile,
                       const CholeskyOptions& options);

/// Solves A x = b using the fault-tolerant factorization: factorizes on
/// the simulated node, then applies forward/backward substitution on the
/// host. `b` is overwritten with the solution (Numeric mode only).
CholeskyResult cholesky_solve(sim::Machine& machine, Matrix<double>* a,
                              MatrixView<double> b,
                              const CholeskyOptions& options,
                              fault::Injector* injector = nullptr);

}  // namespace ftla::abft
