#include "abft/opt2_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ftla::abft {

Opt2Estimate opt2_decide(const sim::MachineProfile& profile, int n, int block,
                         int verify_interval) {
  FTLA_CHECK(n > 0 && block > 0 && verify_interval > 0);
  const double n3 = static_cast<double>(n) * n * n;
  const double b = block;
  const double k = verify_interval;

  const double n_cho = n3 / 3.0;
  const double n_upd = 2.0 * n3 / (3.0 * b);
  const double n_rec = 2.0 * n3 / (3.0 * b);
  const double d_upd_words = n3 / (3.0 * k * b * b);

  // Effective rates rather than raw peaks: the factorization runs at
  // BLAS-3 efficiency, checksum updates at skinny-GEMM efficiency.
  const double p_gpu = profile.gpu_peak_gflops * profile.eff_blas3 * 1e9;
  const double p_gpu_upd =
      profile.gpu_peak_gflops * profile.eff_blas3_skinny * 1e9;
  const double p_cpu =
      profile.cpu_peak_gflops * profile.cpu_eff_checksum * 1e9;
  const double link = profile.d2h_bandwidth_gbs * 1e9;  // bytes/s

  // Both placements hide checksum updating behind the factorization when
  // they can; what distinguishes them is the *exposed* remainder.
  //   GPU: concurrent-kernel quality decides how much of the update
  //        stream actually overlaps a device-filling BLAS-3 kernel
  //        (Fermi overlaps poorly, Kepler's Hyper-Q almost fully).
  //   CPU: overlap is free, but the CPU must keep up and the panel /
  //        verification traffic crosses the PCIe link.
  const double t_base = n_cho / p_gpu + n_rec / p_gpu_upd;
  const double overlap_quality =
      std::min(1.0, static_cast<double>(profile.coexec_spare_units) /
                        std::max(1, profile.blas3_skinny_sm_units));
  const double gpu_exposed = (1.0 - overlap_quality) * (n_upd / p_gpu_upd);
  const double cpu_path = n_upd / p_cpu + d_upd_words * 8.0 / link;

  Opt2Estimate e;
  e.t_pick_gpu_s = t_base + gpu_exposed;
  e.t_pick_cpu_s = std::max(t_base, cpu_path);
  // Ties favor the GPU: it avoids PCIe traffic entirely.
  e.decision = e.t_pick_gpu_s <= e.t_pick_cpu_s ? UpdatePlacement::Gpu
                                                : UpdatePlacement::Cpu;
  return e;
}

}  // namespace ftla::abft
