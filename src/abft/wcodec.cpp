#include "abft/wcodec.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ftla::abft {

namespace {

// Solves the k x k system M x = b by Gaussian elimination with partial
// pivoting. k <= 4. Returns false when M is numerically singular.
bool solve_small(int k, double* m, double* b, double* x) {
  int piv[4];
  for (int i = 0; i < k; ++i) piv[i] = i;
  for (int col = 0; col < k; ++col) {
    int best = col;
    for (int r = col + 1; r < k; ++r) {
      if (std::abs(m[piv[r] * k + col]) > std::abs(m[piv[best] * k + col]))
        best = r;
    }
    std::swap(piv[col], piv[best]);
    const double p = m[piv[col] * k + col];
    if (std::abs(p) < 1e-300) return false;
    for (int r = col + 1; r < k; ++r) {
      const double f = m[piv[r] * k + col] / p;
      if (f == 0.0) continue;
      for (int c = col; c < k; ++c) m[piv[r] * k + c] -= f * m[piv[col] * k + c];
      b[piv[r]] -= f * b[piv[col]];
    }
  }
  for (int row = k - 1; row >= 0; --row) {
    double s = b[piv[row]];
    for (int c = row + 1; c < k; ++c) s -= m[piv[row] * k + c] * x[c];
    x[row] = s / m[piv[row] * k + row];
  }
  return true;
}

double ipow(double base, int e) {
  double r = 1.0;
  for (int i = 0; i < e; ++i) r *= base;
  return r;
}

}  // namespace

WeightedCodec::WeightedCodec(int redundancy) : redundancy_(redundancy) {
  FTLA_CHECK_MSG(redundancy >= 2 && redundancy <= 8,
                 "redundancy must be in [2, 8]");
}

void WeightedCodec::encode(ConstMatrixView<double> a,
                           MatrixView<double> chk) const {
  FTLA_CHECK(chk.rows() == redundancy_ && chk.cols() == a.cols());
  for (int c = 0; c < a.cols(); ++c) {
    for (int k = 0; k < redundancy_; ++k) chk(k, c) = 0.0;
    const double* col = &a(0, c);
    for (int i = 0; i < a.rows(); ++i) {
      double w = 1.0;
      for (int k = 0; k < redundancy_; ++k) {
        chk(k, c) += w * col[i];
        w *= (i + 1.0);
      }
    }
  }
}

void WeightedCodec::potf2_transform(ConstMatrixView<double> l,
                                    MatrixView<double> chk) {
  const int n = l.rows();
  FTLA_CHECK(l.cols() == n && chk.cols() == n);
  const int rows = chk.rows();
  for (int j = 0; j < n; ++j) {
    const double d = l(j, j);
    for (int k = 0; k < rows; ++k) chk(k, j) /= d;
    for (int c = j + 1; c < n; ++c) {
      const double f = l(c, j);
      if (f == 0.0) continue;
      for (int k = 0; k < rows; ++k) chk(k, c) -= chk(k, j) * f;
    }
  }
}

WeightedCodec::ColumnDecode WeightedCodec::decode_column(
    const double* s, const double* t, int rows) const {
  ColumnDecode out;
  const int r = redundancy_;
  bool any_flagged = false;
  for (int k = 0; k < r; ++k) {
    if (std::abs(s[k]) > t[k]) {
      any_flagged = true;
      out.bad_checksum_rows.push_back(k);
    }
  }
  if (!any_flagged) return out;
  out.clean = false;

  // Consistency check of a candidate error set against ALL syndromes.
  auto consistent = [&](const std::vector<std::pair<int, double>>& errs) {
    for (int k = 0; k < r; ++k) {
      double fit = 0.0;
      for (const auto& [row0, e] : errs) fit += e * ipow(row0 + 1.0, k);
      const double resid = std::abs(s[k] - fit);
      const double scale = std::max(std::abs(s[k]), std::abs(fit));
      if (resid > std::max(t[k], 1e-6 * scale)) return false;
    }
    return true;
  };

  // Try nu = 1, 2, ... max_correctable() data errors (Prony's method).
  for (int nu = 1; nu <= max_correctable(); ++nu) {
    std::vector<double> coeff(nu);  // locator x^nu + c_{nu-1} x^{nu-1}...
    if (nu == 1) {
      if (std::abs(s[0]) < 1e-300) continue;
      coeff[0] = -(s[1] / s[0]);  // root = S1/S0
    } else {
      // Hankel system: sum_i c_i S_{k+i} = -S_{k+nu}, k = 0..nu-1.
      double m[16], b[4], x[4];
      for (int k = 0; k < nu; ++k) {
        for (int i = 0; i < nu; ++i) m[k * nu + i] = s[k + i];
        b[k] = -s[k + nu];
      }
      if (!solve_small(nu, m, b, x)) continue;
      for (int i = 0; i < nu; ++i) coeff[i] = x[i];
    }
    // The locator's roots must be integers in [1, rows]: scan.
    auto locator = [&](double v) {
      double acc = ipow(v, nu);
      for (int i = 0; i < nu; ++i) acc += coeff[i] * ipow(v, i);
      return acc;
    };
    std::vector<std::pair<double, int>> candidates;  // (|p(r)| scaled, r)
    for (int row = 1; row <= rows; ++row) {
      const double v = std::abs(locator(row));
      // Scale by the polynomial's magnitude around this root.
      const double scale = ipow(static_cast<double>(row), nu) + 1.0;
      candidates.emplace_back(v / scale, row);
    }
    std::sort(candidates.begin(), candidates.end());
    if (static_cast<int>(candidates.size()) < nu) continue;
    bool roots_ok = true;
    std::vector<int> roots(nu);
    for (int i = 0; i < nu; ++i) {
      if (candidates[i].first > 1e-3) roots_ok = false;
      roots[i] = candidates[i].second;
    }
    if (!roots_ok) continue;
    std::sort(roots.begin(), roots.end());
    if (std::adjacent_find(roots.begin(), roots.end()) != roots.end())
      continue;  // repeated location: not a valid error pattern

    // Magnitudes from the Vandermonde system S_k = sum e_t r_t^k.
    double vm[16], vb[4], ve[4];
    for (int k = 0; k < nu; ++k) {
      for (int i = 0; i < nu; ++i) vm[k * nu + i] = ipow(roots[i], k);
      vb[k] = s[k];
    }
    if (!solve_small(nu, vm, vb, ve)) continue;
    std::vector<std::pair<int, double>> errs(nu);
    for (int i = 0; i < nu; ++i) errs[i] = {roots[i] - 1, ve[i]};
    if (!consistent(errs)) continue;

    out.errors = std::move(errs);
    out.bad_checksum_rows.clear();
    return out;
  }

  // No data hypothesis fits: the flagged checksum rows themselves are
  // corrupted — repairable as long as at least one row is clean.
  if (static_cast<int>(out.bad_checksum_rows.size()) < r) return out;
  out.bad_checksum_rows.clear();
  out.uncorrectable = true;
  return out;
}

VerifyOutcome WeightedCodec::verify(MatrixView<double> a,
                                    MatrixView<double> chk,
                                    ConstMatrixView<double> recalc,
                                    const Tolerance& tol) const {
  const int cols = a.cols();
  FTLA_CHECK(chk.rows() == redundancy_ && chk.cols() == cols);
  FTLA_CHECK(recalc.rows() == redundancy_ && recalc.cols() == cols);

  VerifyOutcome out;
  std::vector<double> s(redundancy_), t(redundancy_);
  for (int c = 0; c < cols; ++c) {
    double scale = 0.0;
    for (int k = 0; k < redundancy_; ++k) {
      s[k] = recalc(k, c) - chk(k, c);
      scale = std::max({scale, std::abs(chk(k, c)), std::abs(recalc(k, c))});
    }
    for (int k = 0; k < redundancy_; ++k) t[k] = tol.threshold(scale);

    auto dec = decode_column(s.data(), t.data(), a.rows());
    if (dec.clean) continue;
    if (dec.uncorrectable) {
      ++out.errors_detected;
      out.uncorrectable = true;
      continue;
    }
    if (!dec.errors.empty()) {
      out.errors_detected += 1;
      for (const auto& [row, e] : dec.errors) {
        const double old_value = a(row, c);
        a(row, c) = old_value - e;
        out.corrections.push_back(Correction{row, c, old_value, a(row, c)});
        ++out.errors_corrected;
      }
    } else {
      for (int k : dec.bad_checksum_rows) {
        chk(k, c) = recalc(k, c);
        ++out.checksum_repairs;
      }
    }
  }
  return out;
}

VerifyOutcome WeightedCodec::verify_host(MatrixView<double> a,
                                         MatrixView<double> chk,
                                         const Tolerance& tol) const {
  Matrix<double> recalc(redundancy_, a.cols());
  encode(ConstMatrixView<double>(a), recalc.view());
  return verify(a, chk, ConstMatrixView<double>(recalc.view()), tol);
}

}  // namespace ftla::abft
