// Paper Opt 2 (§V-B): the analytic model that decides whether checksum
// updating should run on the GPU (extra stream) or on the idle CPU.
//
//   N_cho = n^3 / 3                 FLOPs of the factorization
//   N_upd = 2 n^3 / (3B)            FLOPs of checksum updating
//   N_rec = 2 n^3 / (3B)            FLOPs of checksum recalculation
//   D_upd = n^3 / (3 K B^2)         extra words moved if the CPU updates
//
//   T_gpu = (N_cho + N_upd + N_rec) / P_gpu
//   T_cpu = max((N_cho + N_rec) / P_gpu, N_upd / P_cpu + D_upd / R)
#pragma once

#include "abft/options.hpp"
#include "sim/profile.hpp"

namespace ftla::abft {

struct Opt2Estimate {
  double t_pick_gpu_s = 0.0;
  double t_pick_cpu_s = 0.0;
  UpdatePlacement decision = UpdatePlacement::Gpu;
};

/// Evaluates the paper's decision model for matrix size n, block size B
/// and verification interval K on the given machine.
Opt2Estimate opt2_decide(const sim::MachineProfile& profile, int n, int block,
                         int verify_interval);

}  // namespace ftla::abft
