# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(examples.quickstart "/root/repo/build-review/examples/quickstart" "1280")
set_tests_properties(examples.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(examples.kalman_filter "/root/repo/build-review/examples/kalman_filter")
set_tests_properties(examples.kalman_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(examples.monte_carlo "/root/repo/build-review/examples/monte_carlo")
set_tests_properties(examples.monte_carlo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(examples.fault_storm "/root/repo/build-review/examples/fault_storm" "3")
set_tests_properties(examples.fault_storm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
