// Quickstart: factor an SPD matrix with Enhanced Online-ABFT on the
// simulated heterogeneous node while a storage error strikes mid-run,
// and watch the scheme detect and repair it in place.
//
//   $ ./examples/quickstart [n]
#include <cstdio>
#include <cstdlib>

#include "abft/cholesky.hpp"
#include "blas/lapack.hpp"
#include "common/spd.hpp"
#include "fault/fault.hpp"
#include "sim/profile.hpp"

int main(int argc, char** argv) {
  using namespace ftla;

  // 1. A 2048 x 2048 SPD problem (override with argv[1], e.g. for the
  //    ctest smoke run).
  const int n = argc > 1 ? std::atoi(argv[1]) : 2048;
  Matrix<double> a(n, n);
  make_spd_diag_dominant(a, /*seed=*/42);
  const Matrix<double> a_original = a;

  // 2. A simulated node modeled after the paper's TARDIS testbed
  //    (Tesla M2075 + 2x Opteron 6272). Numeric mode: the math is real,
  //    only the clock is virtual.
  sim::Machine machine(sim::tardis(), sim::ExecutionMode::Numeric);

  // 3. Enhanced Online-ABFT with the paper's three optimizations.
  abft::CholeskyOptions options;
  options.variant = abft::Variant::EnhancedOnline;
  options.block_size = 128;      // small block so the demo runs quickly
  options.verify_interval = 1;   // verify every iteration
  options.placement = abft::UpdatePlacement::Auto;  // paper's Opt-2 model

  // 4. Plan a nasty fault: three bits of an already-decomposed block
  //    flip while it sits in device memory, right before the SYRK of
  //    iteration 8 reads it. ECC cannot fix a 3-bit flip; classic
  //    Online-ABFT would have to throw the whole run away.
  fault::FaultSpec flip;
  flip.type = fault::FaultType::Storage;
  flip.op = fault::Op::Syrk;
  flip.iteration = 8;
  flip.block_row = 8;
  flip.block_col = 5;
  flip.elem_row = 17;
  flip.elem_col = 63;
  flip.bits = {20, 44, 54};
  fault::Injector injector({flip});

  // 5. Factorize.
  auto result = abft::cholesky(machine, &a, n, options, &injector);

  std::printf("success            : %s\n", result.success ? "yes" : "no");
  std::printf("virtual time       : %.4f s (%.1f GFLOP/s on the model GPU)\n",
              result.seconds, result.gflops);
  std::printf("faults injected    : %d\n", injector.fired_count());
  std::printf("errors corrected   : %d (reruns: %d)\n",
              result.errors_corrected, result.reruns);
  std::printf("chosen placement   : %s (Opt 2 model)\n",
              to_string(result.chosen_placement));
  for (const auto& rec : injector.records()) {
    std::printf("  fault at A(%d,%d): %.6g -> %.6g\n", rec.global_row,
                rec.global_col, rec.old_value, rec.new_value);
  }

  // 6. Check the factor against the original matrix.
  const double residual =
      blas::cholesky_residual(a_original.view(), a.view());
  std::printf("||A - L L^T|| / ||A|| = %.3e %s\n", residual,
              residual < 1e-10 ? "(clean)" : "(CORRUPTED!)");
  return residual < 1e-10 && result.success ? 0 : 1;
}
