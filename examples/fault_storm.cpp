// Fault-storm stress demo: hammer each fault-tolerance scheme with
// randomized fault plans and tally the outcomes — a live rendition of
// the paper's Tables VII/VIII plus the silent-corruption failure mode.
//
//   $ ./examples/fault_storm [trials]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "abft/cholesky.hpp"
#include "blas/lapack.hpp"
#include "common/spd.hpp"
#include "common/table.hpp"
#include "fault/fault.hpp"
#include "sim/profile.hpp"

int main(int argc, char** argv) {
  using namespace ftla;
  using abft::Variant;

  const int trials = argc > 1 ? std::atoi(argv[1]) : 12;
  const int n = 512;
  const int block = 64;
  const int nb = n / block;

  Matrix<double> a0(n, n);
  make_spd_diag_dominant(a0, 1);

  std::printf("fault storm: %d trials x 3 random faults each, n = %d\n\n",
              trials, n);

  Table t({"scheme", "clean factor", "via rerun", "silent corruption",
           "fail-stop", "faults corrected"});
  for (Variant v : {Variant::EnhancedOnline, Variant::Online,
                    Variant::Offline, Variant::NoFt}) {
    int clean = 0, rerun = 0, silent = 0, failstop = 0, corrected = 0;
    for (int trial = 0; trial < trials; ++trial) {
      auto plan = fault::random_plan(3, nb, 1000 + trial);
      auto a = a0;
      sim::Machine m(sim::tardis(), sim::ExecutionMode::Numeric);
      abft::CholeskyOptions opt;
      opt.variant = v;
      opt.block_size = block;
      fault::Injector inj(std::move(plan));
      auto res = abft::cholesky(m, &a, n, opt, &inj);
      corrected += res.errors_corrected;
      if (!res.success) {
        ++failstop;
      } else if (blas::cholesky_residual(a0.view(), a.view()) > 1e-6) {
        ++silent;
      } else if (res.reruns > 0) {
        ++rerun;
      } else {
        ++clean;
      }
    }
    t.add_row({abft::to_string(v), std::to_string(clean),
               std::to_string(rerun), std::to_string(silent),
               std::to_string(failstop), std::to_string(corrected)});
  }
  t.print(std::cout);
  std::printf(
      "\nEnhanced Online-ABFT is the only scheme expected to deliver a\n"
      "clean factor in-place on every trial; Online/Offline recover by\n"
      "rerunning or corrupt silently; NoFT has no defense at all.\n");
  return 0;
}
