// Monte-Carlo example (one of the paper's motivating workloads).
//
// Correlated Gaussian sampling: draw x = L z with A = L L^T the target
// covariance. The factorization runs once, fault-tolerant, on the
// simulated node; the samples are then used to estimate a portfolio-like
// quantity, and the sample covariance is checked against A. A silent
// error in L would bias every sample — exactly what Enhanced
// Online-ABFT prevents.
//
//   $ ./examples/monte_carlo
#include <cmath>
#include <cstdio>
#include <vector>

#include "abft/cholesky.hpp"
#include "blas/lapack.hpp"
#include "blas/level2.hpp"
#include "common/rng.hpp"
#include "common/spd.hpp"
#include "fault/fault.hpp"
#include "sim/profile.hpp"

int main() {
  using namespace ftla;

  const int n = 256;        // number of correlated assets
  const int samples = 4000; // Monte-Carlo draws

  Matrix<double> cov(n, n);
  make_spd_exponential(cov, 0.85, 7);
  const Matrix<double> cov_original = cov;

  // Fault-tolerant factorization on the Kepler-node profile, with one
  // computing error and one storage error injected.
  sim::Machine machine(sim::bulldozer64(), sim::ExecutionMode::Numeric);
  abft::CholeskyOptions options;
  options.variant = abft::Variant::EnhancedOnline;
  options.block_size = 32;
  options.placement = abft::UpdatePlacement::Gpu;

  Rng frng(3);
  const int nb = n / options.block_size;
  auto computing = fault::computing_error_at(nb / 3, nb, frng);
  auto storage = fault::storage_error_at(nb / 2, nb, frng);
  fault::Injector injector({computing, storage});

  auto res = abft::cholesky(machine, &cov, n, options, &injector);
  const double resid =
      blas::cholesky_residual(cov_original.view(), cov.view());
  std::printf("factorization: %s, %d faults, %d corrected, residual %.2e\n",
              res.success ? "ok" : "FAILED", injector.fired_count(),
              res.errors_corrected, resid);
  if (!res.success || resid > 1e-8) return 1;

  // Sample x = L z and accumulate the mean of max(sum(x), 0) — a toy
  // basket-option payoff — plus the sample covariance diagonal.
  Rng rng(99);
  std::vector<double> z(n), x(n);
  std::vector<double> var_acc(n, 0.0);
  double payoff = 0.0;
  for (int s = 0; s < samples; ++s) {
    for (auto& v : z) v = rng.next_gaussian();
    // x = L z (lower-triangular multiply).
    for (int i = 0; i < n; ++i) x[i] = z[i];
    blas::trmv(blas::Uplo::Lower, blas::Trans::No, blas::Diag::NonUnit,
               cov.view(), x.data(), 1);
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      total += x[i];
      var_acc[i] += x[i] * x[i];
    }
    payoff += std::max(total, 0.0);
  }
  payoff /= samples;

  // The sample variances must track diag(A).
  double worst_rel = 0.0;
  for (int i = 0; i < n; ++i) {
    const double sample_var = var_acc[i] / samples;
    const double rel =
        std::abs(sample_var - cov_original(i, i)) / cov_original(i, i);
    worst_rel = std::max(worst_rel, rel);
  }
  std::printf("mean payoff estimate : %.4f (%d samples)\n", payoff, samples);
  std::printf("worst variance error : %.1f%% (Monte-Carlo noise ~ %.1f%%)\n",
              worst_rel * 100.0, 100.0 * 3.0 / std::sqrt(samples));
  // 3-sigma Monte-Carlo tolerance on a chi^2 estimate.
  return worst_rel < 3.0 * std::sqrt(2.0 / samples) * 3.0 ? 0 : 1;
}
