// Kalman-filter example (one of the paper's motivating workloads).
//
// A square-root Kalman filter tracks a linear system; every measurement
// update requires the Cholesky factor of the innovation-like covariance
// S = H P H^T + R. Each factorization runs through Enhanced Online-ABFT
// on the simulated GPU node while random storage faults strike, and the
// filter still converges because every fault is corrected in place.
//
//   $ ./examples/kalman_filter
#include <cstdio>
#include <vector>

#include "abft/cholesky.hpp"
#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "common/rng.hpp"
#include "common/spd.hpp"
#include "fault/fault.hpp"
#include "sim/profile.hpp"

namespace {

using namespace ftla;
using blas::Trans;

// S = H P H^T + R for a dense random observation model.
Matrix<double> innovation_covariance(const Matrix<double>& p,
                                     const Matrix<double>& h,
                                     double r_noise) {
  const int m = h.rows();
  const int nx = h.cols();
  Matrix<double> hp(m, nx, 0.0);
  blas::gemm(Trans::No, Trans::No, 1.0, h.view(), p.view(), 0.0, hp.view());
  Matrix<double> s(m, m, 0.0);
  blas::gemm(Trans::No, Trans::Yes, 1.0, hp.view(), h.view(), 0.0, s.view());
  for (int i = 0; i < m; ++i) s(i, i) += r_noise;
  return s;
}

}  // namespace

int main() {
  const int nx = 384;   // state dimension
  const int steps = 6;  // measurement updates
  Rng rng(2016);

  // State covariance starts as an exponentially correlated prior.
  Matrix<double> p(nx, nx);
  make_spd_exponential(p, 0.7, 11);
  Matrix<double> h(nx, nx);
  make_uniform(h, 12);

  sim::Machine machine(sim::tardis(), sim::ExecutionMode::Numeric);
  abft::CholeskyOptions options;
  options.variant = abft::Variant::EnhancedOnline;
  options.block_size = 64;
  options.placement = abft::UpdatePlacement::Auto;

  int total_corrected = 0;
  int total_faults = 0;
  double virtual_time = 0.0;

  std::printf("square-root Kalman filter, nx = %d, %d updates\n\n", nx,
              steps);
  for (int step = 0; step < steps; ++step) {
    Matrix<double> s = innovation_covariance(p, h, 1.0 + step);
    const Matrix<double> s_original = s;

    // One random storage fault per update, somewhere in the middle.
    const int nb = nx / options.block_size;
    auto spec = fault::storage_error_at(1 + rng.uniform_int(0, nb - 2), nb,
                                        rng);
    fault::Injector injector({spec});

    auto res = abft::cholesky(machine, &s, nx, options, &injector);
    const double resid =
        blas::cholesky_residual(s_original.view(), s.view());
    total_corrected += res.errors_corrected;
    total_faults += injector.fired_count();
    virtual_time += res.seconds;
    std::printf(
        "update %d: %s, %d fault(s), %d corrected, residual %.2e, "
        "%.4f virtual s\n",
        step, res.success ? "ok" : "FAILED", injector.fired_count(),
        res.errors_corrected, resid, res.seconds);
    if (!res.success || resid > 1e-8) return 1;

    // Joseph-free toy covariance propagation: P <- 0.9 P + 0.1 I keeps
    // the demo focused on the factorization.
    for (int j = 0; j < nx; ++j) {
      for (int i = 0; i < nx; ++i) p(i, j) *= 0.9;
      p(j, j) += 0.1;
    }
  }

  std::printf(
      "\nfilter completed: %d faults injected, %d corrected in place, "
      "%.4f virtual s total\n",
      total_faults, total_corrected, virtual_time);
  return 0;
}
